"""Vectorized batch simulation engine — N scenarios in lock-step.

The scalar :class:`~repro.simulation.engine.CarFollowingSimulation`
advances one scenario at a time through python-level sense / estimate /
control calls; a 64-run Monte-Carlo sweep therefore pays the python
interpreter 64 times over.  This module advances a *homogeneous group*
of runs simultaneously: every per-run scalar of the step loop becomes a
``(N,)`` float64 array, python branches become boolean masks, and the
whole group costs one pass of numpy ufuncs per step.

Equivalence contract
--------------------
The vectorized engine reproduces the scalar engine **bit-identically**
(``==`` on every trace sample, not ``allclose``).  This works because:

* the scalar numeric kernels (:mod:`repro.core.rls`,
  :mod:`repro.core.predictor`, :mod:`repro.radar.link_budget`,
  :mod:`repro.vehicle.kinematics`) are written as fixed-association
  component-wise IEEE expressions — no BLAS contractions, no libm
  ``pow`` on varying bases — which elementwise numpy ufuncs reproduce
  exactly;
* every python ``min``/``max``/branch is mirrored by the ``np.where``
  with the *same* comparison (``max(a, b)`` is ``b if b > a else a``);
* random draws are consumed from each run's own
  ``np.random.default_rng(sensor_seed)`` in exactly the scalar order
  (a small per-run python loop inside the step — the draws are the only
  per-run python left, and they are cheap relative to the scalar
  engine's full-python step).

``tests/test_vectorized_equivalence.py`` enforces the contract across
attack kinds, fidelities, estimators, horizons and seeds.

What is vectorizable
--------------------
:func:`vectorization_blocker` names the feature that forces a spec onto
the scalar engine, or returns None when the spec can join a vector
group.  Blocked today: platoon scenarios, the IDM follower policy,
adaptive challenge scheduling, non-linear-polynomial defense bases and
attack types outside the paper's set.  ``"signal"`` fidelity is
supported via a per-run sensor fallback inside the vectorized loop (the
root-MUSIC chain runs per run; everything else stays vectorized).

Telemetry
---------
With an active telemetry session the group emits ``vector.step`` (the
whole lock-step loop) and ``vector.music`` (per-run signal-fidelity
sensor seconds) spans plus ``vector.groups`` / ``vector.runs`` /
``vector.steps`` counters.  The scalar engine's ``engine.*`` spans are
*not* emitted — per-run stage timing has no meaning inside a fused
loop.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry as _telemetry
from repro.attacks import (
    DelayInjectionAttack,
    DoSJammingAttack,
    NoAttack,
    PhantomTargetAttack,
)
from repro.radar.equations import invert_beat_frequencies
from repro.radar.link_budget import _FOUR_PI
from repro.radar.sensor import FMCWRadarSensor
from repro.simulation.results import SimulationResult
from repro.simulation.scenario import Scenario
from repro.types import DetectionEvent, TimeSeries
from repro.vehicle.kinematics import advance_state
from repro.vehicle.state import VehicleState

__all__ = ["vectorization_blocker", "group_key", "run_group_vectorized"]

#: Mirrors ``engine._POST_COLLISION_GAP_FLOOR``.
_GAP_FLOOR = 0.5

_SUPPORTED_ATTACKS = (NoAttack, DoSJammingAttack, DelayInjectionAttack, PhantomTargetAttack)


def vectorization_blocker(spec) -> Optional[str]:
    """The feature that keeps ``spec`` off the vectorized engine, or None.

    ``spec`` is duck-typed (``.scenario`` / ``.attack_enabled`` /
    ``.defended``) so this module needs no import of
    :mod:`repro.simulation.batch`.
    """
    scenario = spec.scenario
    if not isinstance(scenario, Scenario):
        return f"scenario type {type(scenario).__name__} is not vectorizable"
    if scenario.follower_policy != "acc":
        return f"follower policy {scenario.follower_policy!r} is not vectorized"
    if scenario.adaptive_challenge_period is not None:
        return "adaptive challenge scheduling is stateful per run"
    if spec.defended and scenario.defense.strategy not in (
        "rls",
        "safety_filter",
    ):
        # secure_reconstruction / combined: the sliding-window subset
        # solver is stateful per run.  The safety filter itself is a
        # pure per-step clamp (certified-track recursion mirrors
        # component-wise), so "safety_filter" — the RLS pipeline plus
        # the clamp — vectorizes like "rls".
        return (
            f"defense strategy {scenario.defense.strategy!r} "
            "is stateful per run"
        )
    if spec.defended and (
        scenario.defense.basis_kind != "polynomial"
        or scenario.defense.basis_order != 1
    ):
        return (
            f"defense basis {scenario.defense.basis_kind}"
            f"(order={scenario.defense.basis_order}) is not vectorized"
        )
    attack = scenario.attack if spec.attack_enabled else None
    if attack is not None and not isinstance(attack, _SUPPORTED_ATTACKS):
        return f"attack type {type(attack).__name__} is not vectorized"
    return None


def group_key(spec):
    """Hashable key grouping specs that can share one vector group.

    Two specs group when they differ only in ``sensor_seed`` and
    ``name`` — exactly the shape of a Monte-Carlo seed sweep.  Leader
    profiles and attacks compare by object identity (they are plain
    classes), which ``Scenario.with_overrides`` preserves; a false
    mismatch merely costs a smaller group, never correctness.
    """
    return (
        replace(spec.scenario, sensor_seed=0, name=""),
        bool(spec.attack_enabled),
        bool(spec.defended),
    )


# ----------------------------------------------------------------------
# scalar-mirror helpers (python-float twins of the masked array kernels,
# used by the per-run dead-reckoning replay on rollback)
# ----------------------------------------------------------------------


class _ScalarPredictor:
    """Python-float mirror of one run's RLS channel state during replay.

    Expression-for-expression identical to
    :class:`repro.core.predictor.ChannelPredictor` with the 2-parameter
    component-wise :class:`repro.core.rls.RLSEstimator` kernel.
    """

    __slots__ = (
        "w0", "w1", "p00", "p01", "p10", "p11",
        "n_upd", "res_var", "ref", "has_ref",
    )

    def __init__(self, w0, w1, p00, p01, p10, p11, n_upd, res_var, ref, has_ref):
        self.w0 = w0
        self.w1 = w1
        self.p00 = p00
        self.p01 = p01
        self.p10 = p10
        self.p11 = p11
        self.n_upd = n_upd
        self.res_var = res_var
        self.ref = ref
        self.has_ref = has_ref

    def predict(self, time: float, cfg) -> float:
        tau = (time - self.ref) / cfg.time_scale
        return self.w0 + self.w1 * tau

    def observe(self, time: float, value: float, cfg) -> None:
        if not self.has_ref:
            self.ref = time
            self.has_ref = True
        tau = (time - self.ref) / cfg.time_scale
        lam = cfg.forgetting
        if cfg.adaptive and self.n_upd >= cfg.min_train:
            sigma = float(np.sqrt(max(0.0, self.res_var)))
            if sigma > 1e-12:
                error = value - (self.w0 + self.w1 * tau)
                normalized = error / (3.0 * sigma)
                ratio = normalized * normalized
                factor = float(np.exp(-min(50.0, ratio)))
                lam = max(cfg.min_forgetting, cfg.forgetting * factor)
        warmed = self.n_upd >= cfg.min_train
        pi0 = self.p00 + self.p01 * tau
        pi1 = self.p10 + self.p11 * tau
        gamma = lam + (pi0 + tau * pi1)
        g0 = pi0 / gamma
        g1 = pi1 / gamma
        error = value - (self.w0 + self.w1 * tau)
        self.w0 = self.w0 + g0 * error
        self.w1 = self.w1 + g1 * error
        n00 = (self.p00 - g0 * pi0) / lam
        n01 = (self.p01 - g0 * pi1) / lam
        n10 = (self.p10 - g1 * pi0) / lam
        n11 = (self.p11 - g1 * pi1) / lam
        off = 0.5 * (n01 + n10)
        self.p00 = n00
        self.p01 = off
        self.p10 = off
        self.p11 = n11
        if warmed:
            lam0 = cfg.forgetting
            self.res_var = lam0 * self.res_var + (1.0 - lam0) * (error * error)
        self.n_upd += 1


class _DefenseCfg:
    """Shared (run-invariant) defense constants, resolved once per group."""

    __slots__ = (
        "forgetting", "delta", "time_scale", "min_train", "zero_tol",
        "adaptive", "min_forgetting", "margin_gain", "rollback",
        "dead_reckoning", "sample_period",
    )

    def __init__(self, scenario: Scenario):
        d = scenario.defense
        self.forgetting = float(d.forgetting)
        self.delta = float(d.delta)
        self.time_scale = float(d.time_scale)
        self.min_train = int(d.min_training_samples)
        self.zero_tol = float(d.zero_tolerance)
        self.adaptive = bool(d.adaptive_forgetting)
        self.min_forgetting = float(d.min_forgetting)
        self.margin_gain = float(d.margin_gain)
        self.rollback = bool(d.rollback_on_detection)
        self.dead_reckoning = d.estimator_kind == "dead_reckoning"
        self.sample_period = float(scenario.sample_period)


def _scalar_roll_anchor(anchor_time, gap, to_time, speed, pred, cfg):
    """Python-float mirror of ``DeadReckoningEstimator._roll_anchor``."""
    while anchor_time + 1e-9 < to_time:
        step_time = min(anchor_time + cfg.sample_period, to_time)
        midpoint = 0.5 * (anchor_time + step_time)
        forecast = pred.predict(midpoint, cfg)
        leader_velocity = max(0.0, forecast)
        relative_velocity = leader_velocity - speed
        gap += relative_velocity * (step_time - anchor_time)
        anchor_time = step_time
    return anchor_time, max(0.0, gap)


# ----------------------------------------------------------------------
# vectorized predictor (masked RLS kernel over the run axis)
# ----------------------------------------------------------------------


class _VecPredictor:
    """One RLS channel for every run of the group, as stacked arrays."""

    def __init__(self, n: int, cfg: _DefenseCfg):
        self.cfg = cfg
        self.w0 = np.zeros(n)
        self.w1 = np.zeros(n)
        self.p00 = np.full(n, cfg.delta)
        self.p01 = np.zeros(n)
        self.p10 = np.zeros(n)
        self.p11 = np.full(n, cfg.delta)
        self.n_upd = np.zeros(n, dtype=np.int64)
        self.res_var = np.zeros(n)
        self.ref = np.zeros(n)
        self.has_ref = np.zeros(n, dtype=bool)

    # -- state movement ------------------------------------------------

    _STATE = ("w0", "w1", "p00", "p01", "p10", "p11", "n_upd", "res_var", "ref", "has_ref")

    def copy_state(self):
        return tuple(getattr(self, name).copy() for name in self._STATE)

    def store_into(self, snap, mask) -> None:
        for name, arr in zip(self._STATE, snap):
            arr[mask] = getattr(self, name)[mask]

    def load_from(self, snap, mask) -> None:
        for name, arr in zip(self._STATE, snap):
            getattr(self, name)[mask] = arr[mask]

    def scalar_view(self, i: int) -> _ScalarPredictor:
        return _ScalarPredictor(
            float(self.w0[i]), float(self.w1[i]),
            float(self.p00[i]), float(self.p01[i]),
            float(self.p10[i]), float(self.p11[i]),
            int(self.n_upd[i]), float(self.res_var[i]),
            float(self.ref[i]), bool(self.has_ref[i]),
        )

    def write_scalar(self, i: int, s: _ScalarPredictor) -> None:
        self.w0[i] = s.w0
        self.w1[i] = s.w1
        self.p00[i] = s.p00
        self.p01[i] = s.p01
        self.p10[i] = s.p10
        self.p11[i] = s.p11
        self.n_upd[i] = s.n_upd
        self.res_var[i] = s.res_var
        self.ref[i] = s.ref
        self.has_ref[i] = s.has_ref

    # -- kernels ---------------------------------------------------------

    @property
    def trained(self) -> np.ndarray:
        return self.n_upd >= self.cfg.min_train

    def predict(self, time: float) -> np.ndarray:
        tau = (time - self.ref) / self.cfg.time_scale
        return self.w0 + self.w1 * tau

    def observe(self, time: float, values: np.ndarray, mask: np.ndarray) -> None:
        """Masked Algorithm-1 update; rows outside ``mask`` untouched."""
        cfg = self.cfg
        need_ref = mask & ~self.has_ref
        if need_ref.any():
            self.ref[need_ref] = time
            self.has_ref |= mask
        tau = (time - self.ref) / cfg.time_scale
        lam0 = cfg.forgetting
        if cfg.adaptive:
            sigma = np.sqrt(np.where(self.res_var > 0.0, self.res_var, 0.0))
            adaptive_rows = mask & (self.n_upd >= cfg.min_train) & (sigma > 1e-12)
            if adaptive_rows.any():
                safe_sigma = np.where(sigma > 1e-12, sigma, 1.0)
                error0 = values - (self.w0 + self.w1 * tau)
                normalized = error0 / (3.0 * safe_sigma)
                ratio = normalized * normalized
                factor = np.exp(-np.where(ratio < 50.0, ratio, 50.0))
                candidate = lam0 * factor
                lam_ad = np.where(candidate > cfg.min_forgetting, candidate, cfg.min_forgetting)
                lam = np.where(adaptive_rows, lam_ad, lam0)
            else:
                lam = lam0
        else:
            lam = lam0
        warmed = self.n_upd >= cfg.min_train
        pi0 = self.p00 + self.p01 * tau
        pi1 = self.p10 + self.p11 * tau
        gamma = lam + (pi0 + tau * pi1)
        g0 = pi0 / gamma
        g1 = pi1 / gamma
        error = values - (self.w0 + self.w1 * tau)
        nw0 = self.w0 + g0 * error
        nw1 = self.w1 + g1 * error
        n00 = (self.p00 - g0 * pi0) / lam
        n01 = (self.p01 - g0 * pi1) / lam
        n10 = (self.p10 - g1 * pi0) / lam
        n11 = (self.p11 - g1 * pi1) / lam
        off = 0.5 * (n01 + n10)
        np.copyto(self.w0, nw0, where=mask)
        np.copyto(self.w1, nw1, where=mask)
        np.copyto(self.p00, n00, where=mask)
        np.copyto(self.p01, off, where=mask)
        np.copyto(self.p10, off, where=mask)
        np.copyto(self.p11, n11, where=mask)
        grow = mask & warmed
        if grow.any():
            new_var = lam0 * self.res_var + (1.0 - lam0) * (error * error)
            np.copyto(self.res_var, new_var, where=grow)
        self.n_upd += mask

    def prediction_scale(self, time: float) -> np.ndarray:
        """``h(t)ᵀ P h(t)`` for the linear-trend basis (``h0 == 1``)."""
        tau = (time - self.ref) / self.cfg.time_scale
        u0 = self.p00 + tau * self.p10
        u1 = self.p01 + tau * self.p11
        return u0 + u1 * tau


# ----------------------------------------------------------------------
# the group runner
# ----------------------------------------------------------------------


def run_group_vectorized(specs) -> List[SimulationResult]:
    """Advance one homogeneous group of run specs in lock-step.

    Every spec must share a :func:`group_key` and pass
    :func:`vectorization_blocker`; callers (the batch layer) guarantee
    both.  Returns one :class:`SimulationResult` per spec, in order,
    bit-identical to what the scalar engine produces for the same spec.
    """
    tele = _telemetry.current()
    t_start = perf_counter()
    scenario: Scenario = specs[0].scenario
    defended = bool(specs[0].defended)
    attack_enabled = bool(specs[0].attack_enabled)
    attack = scenario.attack if attack_enabled else None
    n = len(specs)
    times = [float(t) for t in scenario.times()]
    steps = len(times)
    T = float(scenario.sample_period)
    cfg = _DefenseCfg(scenario)

    # -- shared leader trajectory (python floats, via the real kinematics)
    leader = VehicleState(
        position=scenario.initial_distance, velocity=scenario.leader_initial_speed
    )
    leader_pos: List[float] = []
    leader_vel: List[float] = []
    profile = scenario.leader_profile
    for t in times:
        leader_pos.append(leader.position)
        leader_vel.append(leader.velocity)
        leader = advance_state(leader, profile.acceleration(t), T)

    schedule = scenario.schedule()
    challenge = [schedule.is_challenge(t) for t in times]

    # -- sensor constants (equation fidelity) / per-run sensors (signal)
    params = scenario.radar_params
    signal_mode = scenario.fidelity == "signal"
    music_s = 0.0
    if signal_mode:
        overrides = scenario.sensor_noise_overrides()
        sensors = [
            FMCWRadarSensor(
                params=params,
                fidelity="signal",
                seed=spec.scenario.sensor_seed,
                **overrides,
            )
            for spec in specs
        ]
    else:
        sensors = None
        dstd = (
            scenario.distance_noise_std
            if scenario.distance_noise_std is not None
            else 0.25
        )
        vstd = (
            scenario.velocity_noise_std
            if scenario.velocity_noise_std is not None
            else 0.12
        )
        dropout_rate = float(scenario.dropout_rate)
        gain = params.antenna_gain
        wavelength_sq = params.wavelength**2
        echo_num = params.transmit_power * gain * gain * wavelength_sq * params.default_rcs
        four_pi_3 = _FOUR_PI**3
        system_loss = params.system_loss
        min_range = params.min_range
        max_range = params.max_range
        nyquist_hi = 0.9 * (params.sample_rate / 2.0)
        rngs = [np.random.default_rng(spec.scenario.sensor_seed) for spec in specs]

    is_dos = isinstance(attack, DoSJammingAttack)
    is_delay = isinstance(attack, DelayInjectionAttack)
    is_phantom = isinstance(attack, PhantomTargetAttack)
    if is_dos:
        jammer = attack.jammer
        j_params = attack.radar_params
        band_fraction = min(1.0, j_params.sweep_bandwidth / jammer.bandwidth)
        jam_num = (
            jammer.peak_power
            * jammer.antenna_gain
            * j_params.wavelength**2
            * j_params.antenna_gain
            * band_fraction
        )
        four_pi_2 = _FOUR_PI**2
        jam_loss = jammer.loss
        jam_min_d = attack.minimum_distance

    ego_gain = float(scenario.ego_speed_gain)
    ego_bias = float(scenario.ego_speed_bias)

    # -- ACC constants
    acc = scenario.acc_params
    speed_gain = float(acc.speed_gain)
    set_speed = float(acc.set_speed)
    standstill = float(acc.standstill_distance)
    headway = float(acc.headway_time)
    rv_weight = float(acc.relative_velocity_weight)
    cth_denom = acc.headway_time * acc.system_gain
    max_a = float(acc.max_acceleration)
    min_a = float(acc.min_acceleration)
    coast = float(acc.coast_deceleration)
    brake_gain = float(acc.brake_gain)
    lag_alpha = float(np.exp(-acc.sample_period / acc.time_constant))
    lag_beta = acc.system_gain * (1.0 - lag_alpha)

    # -- safety-filter constants + certified track (strategy "safety_filter")
    filtering = defended and scenario.defense.uses_safety_filter
    if filtering:
        filt_tau = float(scenario.defense.filter_headway)
        filt_dmin = float(scenario.defense.filter_minimum_gap)
        filt_gamma = float(scenario.defense.filter_gamma)
        filt_aL = float(scenario.defense.filter_leader_accel_bound)
        filt_min_a = float(acc.min_acceleration)
        cert_gap = np.zeros(n)
        cert_leader = np.zeros(n)
        # All runs take their first sample on the same step, so one
        # python bool mirrors every scalar filter's None-track state.
        has_cert = False

    # -- follower state
    pos = np.zeros(n)
    vel = np.full(n, float(scenario.follower_initial_speed))
    a_state = np.zeros(n)
    collided = np.zeros(n, dtype=bool)
    collision_time = np.full(n, np.nan)

    # -- defense / tracker state
    events: List[List[DetectionEvent]] = [[] for _ in range(n)]
    if defended:
        alarm = np.zeros(n, dtype=bool)
        lt_d = np.zeros(n)
        lt_rv = np.zeros(n)
        has_lt = np.zeros(n, dtype=bool)
        if cfg.dead_reckoning:
            pred = _VecPredictor(n, cfg)
            anchor_time = np.zeros(n)
            anchor_gap = np.zeros(n)
            anchor_valid = np.zeros(n, dtype=bool)
            ltt = np.zeros(n)
            ltt_valid = np.zeros(n, dtype=bool)
            q_start = np.zeros(n, dtype=np.int64)
            qmode = np.zeros((steps, n), dtype=np.int8)
            qspeed = np.zeros((steps, n))
            snap_pred = pred.copy_state()
            snap_anchor_time = np.zeros(n)
            snap_anchor_gap = np.zeros(n)
            snap_anchor_valid = np.zeros(n, dtype=bool)
            snap_ltt = np.zeros(n)
            snap_ltt_valid = np.zeros(n, dtype=bool)
            snap_valid = np.zeros(n, dtype=bool)
        else:
            pred_d = _VecPredictor(n, cfg)
            pred_v = _VecPredictor(n, cfg)
            snap_d = pred_d.copy_state()
            snap_v = pred_v.copy_state()
            snap_valid = np.zeros(n, dtype=bool)
    else:
        trk_has = np.zeros(n, dtype=bool)
        trk_d = np.zeros(n)
        trk_rate = np.zeros(n)
        trk_hits = np.zeros(n, dtype=np.int64)
        trk_misses = np.zeros(n, dtype=np.int64)
        trk_confirmed = np.zeros(n, dtype=bool)
        trk_beta_T = 0.2 / T  # AlphaBetaTracker defaults (engine uses them)
        trk_alpha = 0.6
        trk_confirm_hits = 2
        trk_max_coast = 5

    # -- trace buffers (steps, n)
    tr = {
        name: np.zeros((steps, n))
        for name in (
            "follower_position",
            "follower_velocity",
            "follower_acceleration",
            "true_distance",
            "true_relative_velocity",
            "measured_distance",
            "measured_relative_velocity",
            "safe_distance",
            "safe_relative_velocity",
            "desired_distance",
            "desired_acceleration",
            "pedal_acceleration",
            "brake_pressure",
            "spacing_mode",
            "estimated_flag",
            "attack_active_flag",
        )
    }

    md = np.zeros(n)
    mrv = np.zeros(n)
    arange_n = range(n)

    for k in range(steps):
        t = times[k]
        lp_k = leader_pos[k]
        lv_k = leader_vel[k]

        # ---- sense: true geometry -------------------------------------
        true_gap = lp_k - pos
        if np.any(true_gap <= 0.0):
            newly = (true_gap <= 0.0) & ~collided
            if newly.any():
                collision_time[newly] = t
                collided |= newly
        radar_gap = np.where(true_gap < _GAP_FLOOR, _GAP_FLOOR, true_gap)
        trv = lv_k - vel

        transmit = not challenge[k]

        # ---- attack effect (shared window; per-run magnitudes) --------
        dos_now = is_dos and attack.window.contains(t)
        spoof_now = (is_delay or is_phantom) and attack.window.contains(t)
        if is_delay and spoof_now:
            off_d = attack.offset_at(t)
            off_v = attack.velocity_offset

        # ---- measurement ----------------------------------------------
        if signal_mode:
            t_music = perf_counter()
            for i in arange_n:
                gap_i = float(radar_gap[i])
                trv_i = float(trv[i])
                effect = (
                    attack.effect_at(t, gap_i, trv_i) if attack is not None else None
                )
                m = sensors[i].measure(
                    t, gap_i, trv_i, transmit=transmit, effect=effect
                )
                md[i] = m.distance
                mrv[i] = m.relative_velocity
            music_s += perf_counter() - t_music
        else:
            d2 = radar_gap * radar_gap
            visible = (min_range <= radar_gap) & (radar_gap <= max_range)
            echo = np.where(
                visible,
                echo_num / (four_pi_3 * (d2 * d2) * system_loss),
                0.0,
            )
            if dos_now:
                dj = np.where(radar_gap > jam_min_d, radar_gap, jam_min_d)
                jam = jam_num / (four_pi_2 * (dj * dj) * jam_loss)
                jam_wins = np.logical_or(not transmit, jam > echo)
            drop_eligible = transmit and dropout_rate > 0.0 and not dos_now
            for i in arange_n:
                rng = rngs[i]
                if drop_eligible and rng.random() < dropout_rate:
                    md[i] = 0.0
                    mrv[i] = 0.0
                    continue
                if dos_now and jam_wins[i]:
                    f_up = float(rng.uniform(0.0, nyquist_hi))
                    f_down = float(rng.uniform(0.0, nyquist_hi))
                    d_i, v_i = invert_beat_frequencies(params, f_up, f_down)
                    md[i] = d_i
                    mrv[i] = v_i
                elif spoof_now:
                    gap_i = float(radar_gap[i])
                    if is_phantom:
                        spoof_d = gap_i + (attack.phantom_distance - gap_i)
                        spoof_v = float(trv[i]) + (
                            attack.phantom_velocity - float(trv[i])
                        )
                    else:
                        spoof_d = gap_i + off_d
                        spoof_v = float(trv[i]) + off_v
                    md[i] = spoof_d + rng.normal(0.0, dstd)
                    mrv[i] = spoof_v + rng.normal(0.0, vstd)
                elif not transmit or not visible[i]:
                    md[i] = 0.0
                    mrv[i] = 0.0
                else:
                    md[i] = float(radar_gap[i]) + rng.normal(0.0, dstd)
                    mrv[i] = float(trv[i]) + rng.normal(0.0, vstd)

        sensed_ego = ego_gain * vel + ego_bias

        # ---- estimate: defense pipeline or coasting tracker -----------
        if defended:
            is_ch = challenge[k]
            if is_ch:
                abs_d = np.abs(md)
                abs_rv = np.abs(mrv)
                nonzero = ~((abs_d <= cfg.zero_tol) & (abs_rv <= cfg.zero_tol))
                raising = nonzero & ~alarm
                magnitude = np.where(abs_rv > abs_d, abs_rv, abs_d)
                for i in arange_n:
                    events[i].append(
                        DetectionEvent(
                            time=t,
                            attack_detected=bool(nonzero[i]),
                            receiver_output=float(magnitude[i]),
                        )
                    )
                alarm = nonzero.copy()
                if cfg.rollback:
                    roll = raising & snap_valid
                    if roll.any():
                        if cfg.dead_reckoning:
                            _replay_rollback(
                                roll, k, times, cfg, pred,
                                anchor_time, anchor_gap, anchor_valid,
                                ltt, ltt_valid, q_start,
                                qmode, qspeed,
                                tr["measured_distance"], tr["measured_relative_velocity"],
                                snap_pred, snap_anchor_time, snap_anchor_gap,
                                snap_anchor_valid, snap_ltt, snap_ltt_valid,
                            )
                        else:
                            pred_d.load_from(snap_d, roll)
                            pred_v.load_from(snap_v, roll)
            missed = (not is_ch) & (
                (np.abs(md) <= cfg.zero_tol) & (np.abs(mrv) <= cfg.zero_tol)
            )
            est = alarm | is_ch | missed

            if cfg.dead_reckoning:
                trained = pred.trained & anchor_valid
            else:
                trained = pred_d.trained & pred_v.trained

            est_d = md
            est_rv = mrv
            if est.any():
                forecastable = est & trained
                est_d = np.where(has_lt, lt_d, 0.0)
                est_rv = np.where(has_lt, lt_rv, 0.0)
                if forecastable.any():
                    if cfg.dead_reckoning:
                        qmode[k][forecastable] = 2
                        qspeed[k] = sensed_ego
                        _vec_roll_anchor(
                            forecastable, t, T, cfg, pred,
                            anchor_time, anchor_gap, sensed_ego,
                        )
                        forecast = pred.predict(t)
                        leader_v = np.where(forecast > 0.0, forecast, 0.0)
                        rv_hat = leader_v - sensed_ego
                        if cfg.margin_gain == 0.0:
                            margin = 0.0
                        else:
                            horizon_arr = t - ltt
                            horizon_arr = np.where(
                                horizon_arr > 0.0, horizon_arr, 0.0
                            )
                            scale = pred.prediction_scale(t)
                            scale = np.where(1.0 > scale, 1.0, scale)
                            variance = pred.res_var * scale
                            sigma = np.sqrt(
                                np.where(variance > 0.0, variance, 0.0)
                            )
                            margin = np.where(
                                ltt_valid & (horizon_arr > 0.0),
                                cfg.margin_gain * sigma * horizon_arr / 2.0,
                                0.0,
                            )
                        d_hat = anchor_gap - margin
                        d_hat = np.where(d_hat > 0.0, d_hat, 0.0)
                    else:
                        d_hat = pred_d.predict(t)
                        rv_hat = pred_v.predict(t)
                    est_d = np.where(forecastable, d_hat, est_d)
                    est_rv = np.where(forecastable, rv_hat, est_rv)

            observe = ~est
            if observe.any():
                if cfg.dead_reckoning:
                    leader_v_obs = mrv + sensed_ego
                    pred.observe(t, leader_v_obs, observe)
                    np.copyto(anchor_time, t, where=observe)
                    np.copyto(anchor_gap, md, where=observe)
                    anchor_valid |= observe
                    np.copyto(ltt, t, where=observe)
                    ltt_valid |= observe
                    qmode[k][observe] = 1
                    qspeed[k] = sensed_ego
                else:
                    pred_d.observe(t, md, observe)
                    pred_v.observe(t, mrv, observe)
                np.copyto(lt_d, md, where=observe)
                np.copyto(lt_rv, mrv, where=observe)
                has_lt |= observe

            if is_ch:
                clean = ~alarm
                if clean.any():
                    if cfg.dead_reckoning:
                        pred.store_into(snap_pred, clean)
                        snap_anchor_time[clean] = anchor_time[clean]
                        snap_anchor_gap[clean] = anchor_gap[clean]
                        snap_anchor_valid[clean] = anchor_valid[clean]
                        snap_ltt[clean] = ltt[clean]
                        snap_ltt_valid[clean] = ltt_valid[clean]
                        q_start[clean] = k + 1
                    else:
                        pred_d.store_into(snap_d, clean)
                        pred_v.store_into(snap_v, clean)
                    snap_valid |= clean

            safe_d = np.where(est, est_d, md)
            safe_rv = np.where(est, est_rv, mrv)
            has_view = True
            estimated = est
            attack_active = alarm
        else:
            coasting = (np.abs(md) <= 1e-9) & (np.abs(mrv) <= 1e-9)
            hit = ~coasting
            # misses on absent-or-tentative tracks drop the track
            dead = coasting & (~trk_has | ~trk_confirmed)
            # confirmed tracks coast up to max_coast misses
            coast_rows = coasting & trk_has & trk_confirmed
            new_misses = trk_misses + 1
            expired = coast_rows & (new_misses > trk_max_coast)
            surviving = coast_rows & ~expired
            predicted = trk_d + trk_rate * T
            # hits on an empty track initiate; on a live track they update
            initiate = hit & ~trk_has
            track_update = hit & trk_has
            innovation = md - predicted
            upd_d = predicted + trk_alpha * innovation
            upd_rate = trk_rate + trk_beta_T * innovation

            np.copyto(trk_d, predicted, where=surviving)
            np.copyto(trk_misses, new_misses, where=surviving)
            np.copyto(trk_d, upd_d, where=track_update)
            np.copyto(trk_rate, upd_rate, where=track_update)
            np.copyto(trk_d, md, where=initiate)
            np.copyto(trk_rate, mrv, where=initiate)
            trk_hits = np.where(initiate, 1, np.where(track_update, trk_hits + 1, trk_hits))
            trk_misses[hit] = 0
            trk_confirmed = np.where(
                hit, trk_confirmed | (trk_hits >= trk_confirm_hits), trk_confirmed
            )
            reset_rows = dead | expired
            if reset_rows.any():
                trk_d[reset_rows] = 0.0
                trk_rate[reset_rows] = 0.0
                trk_hits[reset_rows] = 0
                trk_misses[reset_rows] = 0
                trk_confirmed[reset_rows] = False
                trk_has[reset_rows] = False
            trk_has = trk_has | initiate
            has_view = trk_confirmed & trk_has & ~dead & ~expired
            safe_d = np.where(has_view, trk_d, 0.0)
            safe_rv = np.where(has_view, trk_rate, 0.0)
            estimated = coasting & has_view
            attack_active = False

        # ---- control: CTH upper level + lag lower level ----------------
        speed_cmd = speed_gain * (set_speed - vel)
        vel_floor = np.where(vel > 0.0, vel, 0.0)
        d_des = standstill + headway * vel_floor
        clearance = safe_d - d_des
        spacing_cmd = (clearance + rv_weight * safe_rv) / cth_denom
        if defended:
            spacing_sel = spacing_cmd < speed_cmd
        else:
            spacing_sel = has_view & (spacing_cmd < speed_cmd)
        command = np.where(spacing_sel, spacing_cmd, speed_cmd)
        lifted = np.where(command > min_a, command, min_a)
        a_des = np.where(lifted < max_a, lifted, max_a)
        if filtering:
            # Component-wise mirror of SafetyFilter.clamp on the safe
            # view (python min(a,b) ≡ where(b < a, b, a), max(a,b) ≡
            # where(b > a, b, a) — the codebase's IEEE convention).
            measured_leader = safe_rv + sensed_ego
            if has_cert:
                allowed = cert_leader + filt_aL * T
                cert_leader = np.where(
                    allowed < measured_leader, allowed, measured_leader
                )
            else:
                cert_leader = measured_leader
            cert_rel = cert_leader - sensed_ego
            if has_cert:
                rel_pos = np.where(cert_rel > 0.0, cert_rel, 0.0)
                growth_cap = cert_gap + T * rel_pos + 0.5 * filt_aL * T * T
                cert_gap = np.where(safe_d > growth_cap, growth_cap, safe_d)
            else:
                cert_gap = safe_d
                has_cert = True
            cert_gap = np.where(cert_gap > 0.0, cert_gap, 0.0)
            h = cert_gap - filt_dmin - filt_tau * sensed_ego
            bound = (filt_gamma * h + T * cert_rel) / (
                filt_tau * T + 0.5 * T * T
            )
            clamped = np.where(bound < a_des, bound, a_des)
            admissible = np.where(clamped > filt_min_a, clamped, filt_min_a)
            # The lower level re-saturates whatever command it is handed
            # (LowerLevelController.actuation_split → clamp_command).
            relifted = np.where(admissible > min_a, admissible, min_a)
            a_cmd = np.where(relifted < max_a, relifted, max_a)
        else:
            a_cmd = a_des
        surplus = a_cmd - coast
        pedal = np.where(surplus >= 0.0, surplus, 0.0)
        brake = np.where(surplus >= 0.0, 0.0, brake_gain * (-surplus))
        a_new = lag_alpha * a_state + lag_beta * a_cmd

        # ---- record -----------------------------------------------------
        tr["follower_position"][k] = pos
        tr["follower_velocity"][k] = vel
        tr["follower_acceleration"][k] = a_new
        tr["true_distance"][k] = true_gap
        tr["true_relative_velocity"][k] = trv
        tr["measured_distance"][k] = md
        tr["measured_relative_velocity"][k] = mrv
        tr["safe_distance"][k] = safe_d
        tr["safe_relative_velocity"][k] = safe_rv
        tr["desired_distance"][k] = d_des
        tr["desired_acceleration"][k] = a_des
        tr["pedal_acceleration"][k] = pedal
        tr["brake_pressure"][k] = brake
        tr["spacing_mode"][k] = spacing_sel
        tr["estimated_flag"][k] = estimated
        tr["attack_active_flag"][k] = attack_active

        # ---- advance kinematics ----------------------------------------
        v1 = vel + a_new * T
        stopping = v1 < 0.0
        if stopping.any():
            denom = np.where(stopping, -a_new, 1.0)
            t_stop = vel / denom
            pos_stop = pos + vel * t_stop + 0.5 * a_new * (t_stop * t_stop)
            pos_move = pos + vel * T + 0.5 * a_new * T * T
            pos = np.where(stopping, pos_stop, pos_move)
            vel = np.where(stopping, 0.0, v1)
        else:
            pos = pos + vel * T + 0.5 * a_new * T * T
            vel = v1
        a_state = a_new

    # ---- package per-run results --------------------------------------
    attack_tag = attack.label.value if attack is not None else "clean"
    attack_name = attack.label.value if attack is not None else "none"
    mode = "defended" if defended else "undefended"
    results: List[SimulationResult] = []
    leader_pos_list = [float(v) for v in leader_pos]
    leader_vel_list = [float(v) for v in leader_vel]
    for i, spec in enumerate(specs):
        name = f"{spec.scenario.name}/{attack_tag}/{mode}"
        traces = {
            "leader_position": TimeSeries(
                "leader_position", list(times), list(leader_pos_list)
            ),
            "leader_velocity": TimeSeries(
                "leader_velocity", list(times), list(leader_vel_list)
            ),
        }
        for trace_name, arr in tr.items():
            traces[trace_name] = TimeSeries(
                trace_name, list(times), arr[:, i].tolist()
            )
        result = SimulationResult(
            name=name,
            traces=traces,
            detection_events=list(events[i]),
            collision_time=(
                float(collision_time[i]) if collided[i] else None
            ),
            attack_name=attack_name,
            defended=defended,
        )
        results.append(result)

    if tele is not None:
        attrs = {"runs": n, "steps": steps}
        tele.emit("vector.step", perf_counter() - t_start, attrs=dict(attrs))
        if signal_mode:
            tele.emit("vector.music", music_s, attrs=dict(attrs))
        tele.incr("vector.groups")
        tele.incr("vector.runs", n)
        tele.incr("vector.steps", steps * n)
    return results


def _vec_roll_anchor(mask, to_time, T, cfg, pred, anchor_time, anchor_gap, speeds):
    """Masked mirror of ``DeadReckoningEstimator._roll_anchor``.

    Rows advance independently until their anchor reaches ``to_time``;
    the final ``max(0, gap)`` clamp applies to every masked row, exactly
    as the scalar method does unconditionally on exit.
    """
    active = mask & (anchor_time + 1e-9 < to_time)
    while active.any():
        candidate = anchor_time + T
        step_time = np.where(to_time < candidate, to_time, candidate)
        midpoint = 0.5 * (anchor_time + step_time)
        forecast = pred.predict(midpoint)
        leader_v = np.where(forecast > 0.0, forecast, 0.0)
        relative_v = leader_v - speeds
        np.copyto(anchor_gap, anchor_gap + relative_v * (step_time - anchor_time), where=active)
        np.copyto(anchor_time, step_time, where=active)
        active = active & (anchor_time + 1e-9 < to_time)
    np.copyto(anchor_gap, np.where(anchor_gap > 0.0, anchor_gap, 0.0), where=mask)


def _replay_rollback(
    roll, k, times, cfg, pred,
    anchor_time, anchor_gap, anchor_valid,
    ltt, ltt_valid, q_start,
    qmode, qspeed, md_trace, mrv_trace,
    snap_pred, snap_anchor_time, snap_anchor_gap,
    snap_anchor_valid, snap_ltt, snap_ltt_valid,
):
    """Per-run mirror of ``DeadReckoningEstimator.restore``.

    Rolls each masked run back to its authenticated snapshot, then
    replays its quarantined samples with the validation gate — scalar
    python floats per run, using the same fixed-association expressions
    as the vectorized kernels (and hence as the scalar engine).
    """
    for i in np.nonzero(roll)[0]:
        s = _ScalarPredictor(
            float(snap_pred[0][i]), float(snap_pred[1][i]),
            float(snap_pred[2][i]), float(snap_pred[3][i]),
            float(snap_pred[4][i]), float(snap_pred[5][i]),
            int(snap_pred[6][i]), float(snap_pred[7][i]),
            float(snap_pred[8][i]), bool(snap_pred[9][i]),
        )
        at_i = float(snap_anchor_time[i])
        ag_i = float(snap_anchor_gap[i])
        av_i = bool(snap_anchor_valid[i])
        ltt_i = float(snap_ltt[i])
        lttv_i = bool(snap_ltt_valid[i])
        if av_i:
            snap_at = at_i
            for j in range(int(q_start[i]), k):
                entry_mode = qmode[j, i]
                if entry_mode == 0:
                    continue
                log_t = times[j]
                if log_t <= snap_at or s.n_upd < cfg.min_train:
                    continue
                speed_j = float(qspeed[j, i])
                span = log_t - (ltt_i if lttv_i else snap_at)
                at_i, ag_i = _scalar_roll_anchor(at_i, ag_i, log_t, speed_j, s, cfg)
                if entry_mode != 1:
                    continue
                d_j = float(md_trace[j, i])
                rv_j = float(mrv_trace[j, i])
                innovation = d_j - ag_i
                residual = float(np.sqrt(max(0.0, s.res_var)))
                gate = max(3.0, 5.0 * residual * max(1.0, span))
                if abs(innovation) <= gate:
                    s.observe(log_t, rv_j + speed_j, cfg)
                    at_i = log_t
                    ag_i = d_j
                    av_i = True
                    ltt_i = log_t
                    lttv_i = True
        pred.write_scalar(i, s)
        anchor_time[i] = at_i
        anchor_gap[i] = ag_i
        anchor_valid[i] = av_i
        ltt[i] = ltt_i
        ltt_valid[i] = lttv_i
        q_start[i] = k
