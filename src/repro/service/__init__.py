"""Async simulation service: serve runs, not scripts.

:mod:`repro.service` puts a long-running asyncio HTTP/JSON server in
front of the library's execution stack, turning one-shot scripts into
a deployable system shaped for heavy, redundant request streams —
stateless frontends over the shared content-addressed
:class:`~repro.store.RunStore`:

* ``POST /v1/runs`` takes the same declarative ``spec_version=1``
  scenario dicts the CLI's ``run-custom`` reads, fingerprints them
  (:mod:`repro.store.fingerprint`), and serves store hits without
  executing anything;
* misses enqueue onto a bounded process pool off the event loop, with
  **single-flight coalescing**: any number of concurrent identical
  requests cause exactly one engine execution
  (:mod:`repro.service.jobs`);
* jobs, results, store stats and liveness are queryable
  (``/v1/jobs/{id}``, ``/v1/runs/{fingerprint}``, ``/v1/store/stats``,
  ``/healthz``), and every endpoint is traced through
  :mod:`repro.telemetry` (``service.request`` spans,
  ``service.cache_hit`` / ``service.coalesced`` / ``service.executed``
  counters).

Start it from the CLI::

    python -m repro serve --port 8077 --workers 4 --store runs.sqlite

or embed it in an asyncio program via :class:`ServiceApp` /
:func:`serve_async`.  The HTTP layer is stdlib-only
(:mod:`repro.service.http`), including an async JSON client
(:func:`fetch_json`) used by the tests and the throughput bench.
"""

from repro.service.app import ServiceApp, serve, serve_async
from repro.service.http import HTTPError, Request, fetch_json
from repro.service.jobs import Job, JobManager, Submission, compute_record

__all__ = [
    "ServiceApp",
    "serve",
    "serve_async",
    "HTTPError",
    "Request",
    "fetch_json",
    "Job",
    "JobManager",
    "Submission",
    "compute_record",
]
