"""ACC upper/lower controllers (repro.vehicle) — paper Eqns 12-14."""

import pytest

from repro.exceptions import ConfigurationError
from repro.units import mph_to_mps
from repro.vehicle import (
    ACCParameters,
    ACCSystem,
    ControlMode,
    LowerLevelController,
    UpperLevelController,
)

PARAMS = ACCParameters()


class TestACCParameters:
    def test_paper_values(self):
        assert PARAMS.headway_time == 3.0
        assert PARAMS.standstill_distance == 5.0
        assert PARAMS.system_gain == 1.0
        assert PARAMS.time_constant == pytest.approx(1.008)
        assert PARAMS.set_speed == pytest.approx(mph_to_mps(67.0))

    def test_eqn12_desired_distance(self):
        # d_des = d0 + τ_h v_F.
        assert PARAMS.desired_distance(10.0) == pytest.approx(5.0 + 30.0)
        assert PARAMS.desired_distance(0.0) == 5.0

    def test_desired_distance_clamps_negative_speed(self):
        assert PARAMS.desired_distance(-5.0) == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ACCParameters(headway_time=0.0)
        with pytest.raises(ConfigurationError):
            ACCParameters(time_constant=-1.0)
        with pytest.raises(ConfigurationError):
            ACCParameters(max_acceleration=-1.0)
        with pytest.raises(ConfigurationError):
            ACCParameters(min_acceleration=1.0)
        with pytest.raises(ConfigurationError):
            ACCParameters(coast_deceleration=0.5)

    def test_with_overrides(self):
        p = PARAMS.with_overrides(headway_time=2.0)
        assert p.headway_time == 2.0
        assert p.standstill_distance == PARAMS.standstill_distance


class TestUpperLevelController:
    def setup_method(self):
        self.ctrl = UpperLevelController(PARAMS)

    def test_no_target_is_speed_mode(self):
        out = self.ctrl.compute(follower_speed=20.0, measurement=None)
        assert out.mode is ControlMode.SPEED
        assert out.desired_acceleration > 0.0  # below set speed

    def test_speed_mode_brakes_above_set_speed(self):
        out = self.ctrl.compute(PARAMS.set_speed + 5.0, None)
        assert out.desired_acceleration < 0.0

    def test_speed_mode_zero_at_set_speed(self):
        out = self.ctrl.compute(PARAMS.set_speed, None)
        assert out.desired_acceleration == pytest.approx(0.0)

    def test_far_target_stays_speed_mode(self):
        # Gap far above d_des: cruise governs.
        out = self.ctrl.compute(20.0, (150.0, 0.0))
        assert out.mode is ControlMode.SPEED

    def test_close_target_switches_to_spacing(self):
        # Gap below d_des = 5 + 3*20 = 65: spacing governs and brakes.
        out = self.ctrl.compute(20.0, (40.0, -2.0))
        assert out.mode is ControlMode.SPACING
        assert out.desired_acceleration < 0.0
        assert out.clearance_error == pytest.approx(40.0 - 65.0)

    def test_spacing_command_is_cth_law(self):
        # a = (Δd + λ_v Δv) / (τ_h K_L).
        d, dv, vF = 50.0, -1.5, 15.0
        command, d_des, clearance = self.ctrl.spacing_mode_command(vF, d, dv)
        assert d_des == pytest.approx(50.0)
        assert clearance == pytest.approx(0.0)
        expected = (clearance + PARAMS.relative_velocity_weight * dv) / (
            PARAMS.headway_time * PARAMS.system_gain
        )
        assert command == pytest.approx(expected)

    def test_acceleration_saturated(self):
        out = self.ctrl.compute(20.0, (1.0, -30.0))
        assert out.desired_acceleration == PARAMS.min_acceleration
        out = self.ctrl.compute(0.0, None)
        assert out.desired_acceleration <= PARAMS.max_acceleration

    def test_arbitration_picks_smaller_command(self):
        # Target relaxed (spacing would accelerate hard) but cruise caps it.
        out = self.ctrl.compute(PARAMS.set_speed, (500.0, 10.0))
        assert out.mode is ControlMode.SPEED
        assert out.desired_acceleration == pytest.approx(0.0)

    def test_corrupted_larger_distance_underbrakes(self):
        # The delay-attack mechanism: +6 m on the gap raises a_des.
        honest = self.ctrl.compute(20.0, (55.0, -2.0)).desired_acceleration
        spoofed = self.ctrl.compute(20.0, (61.0, -2.0)).desired_acceleration
        assert spoofed > honest


class TestLowerLevelController:
    def test_positive_demand_uses_pedal(self):
        ctrl = LowerLevelController(PARAMS)
        split = ctrl.actuation_split(1.0)
        assert split.pedal_acceleration > 0.0
        assert split.brake_pressure == 0.0

    def test_braking_demand_uses_brakes(self):
        ctrl = LowerLevelController(PARAMS)
        split = ctrl.actuation_split(-2.0)
        assert split.pedal_acceleration == 0.0
        assert split.brake_pressure > 0.0

    def test_coast_band_needs_neither(self):
        ctrl = LowerLevelController(PARAMS)
        split = ctrl.actuation_split(PARAMS.coast_deceleration)
        assert split.pedal_acceleration == 0.0
        assert split.brake_pressure == 0.0

    def test_brake_pressure_proportional(self):
        ctrl = LowerLevelController(PARAMS)
        p1 = ctrl.actuation_split(-1.0).brake_pressure
        p2 = ctrl.actuation_split(-2.0).brake_pressure
        assert p2 > p1

    def test_split_respects_saturation(self):
        ctrl = LowerLevelController(PARAMS)
        split = ctrl.actuation_split(-100.0)
        assert split.commanded_acceleration == PARAMS.min_acceleration

    def test_step_tracks_lag(self):
        ctrl = LowerLevelController(PARAMS)
        accel = 0.0
        for _ in range(30):
            accel, _ = ctrl.step(-2.0)
        assert accel == pytest.approx(-2.0, abs=1e-6)

    def test_reset(self):
        ctrl = LowerLevelController(PARAMS)
        ctrl.step(2.0)
        ctrl.reset()
        assert ctrl.actual_acceleration == 0.0


class TestACCSystem:
    def test_step_produces_consistent_result(self):
        acc = ACCSystem(PARAMS)
        result = acc.step(20.0, (40.0, -2.0))
        assert result.mode is ControlMode.SPACING
        assert result.desired_acceleration < 0.0
        assert result.actuation.brake_pressure > 0.0
        # First-order lag: actual moves toward desired but lags.
        assert result.actual_acceleration < 0.0
        assert result.actual_acceleration > result.desired_acceleration

    def test_converges_to_headway_equilibrium(self):
        """Closed loop with a constant-speed leader settles at d_des."""
        acc = ACCSystem(PARAMS)
        leader_speed = 20.0
        follower_speed = 22.0
        gap = 80.0
        for _ in range(300):
            result = acc.step(follower_speed, (gap, leader_speed - follower_speed))
            follower_speed = max(0.0, follower_speed + result.actual_acceleration)
            gap += leader_speed - follower_speed
        assert follower_speed == pytest.approx(leader_speed, abs=0.05)
        assert gap == pytest.approx(PARAMS.desired_distance(follower_speed), abs=1.0)

    def test_reset(self):
        acc = ACCSystem(PARAMS)
        acc.step(20.0, (40.0, -2.0))
        acc.reset()
        assert acc.actual_acceleration == 0.0
