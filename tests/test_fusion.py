"""Redundant-sensor fusion defense (repro.core.fusion)."""

import pytest

from repro import fig2_scenario
from repro.core.fusion import MedianFusionDefense, run_redundant_defense
from repro.exceptions import ConfigurationError
from repro.types import RadarMeasurement


def measurement(d, dv=0.0, t=0.0):
    return RadarMeasurement(time=t, distance=d, relative_velocity=dv)


class TestMedianFusion:
    def test_median_of_three(self):
        fusion = MedianFusionDefense(n_sensors=3)
        fused = fusion.fuse([measurement(50.0), measurement(51.0), measurement(49.0)])
        assert fused.distance == 50.0
        assert not fused.attack_suspected

    def test_single_outlier_out_voted_and_flagged(self):
        fusion = MedianFusionDefense(n_sensors=3)
        fused = fusion.fuse([measurement(90.0), measurement(50.0), measurement(50.5)])
        assert fused.distance == pytest.approx(50.5)
        assert fused.outlier_sensors == (0,)
        assert fused.attack_suspected

    def test_majority_corruption_defeats_fusion(self):
        # The redundancy assumption breaks when the attacker reaches a
        # majority: the median IS the corrupted value.
        fusion = MedianFusionDefense(n_sensors=3)
        fused = fusion.fuse([measurement(90.0), measurement(90.2), measurement(50.0)])
        assert fused.distance == pytest.approx(90.0)

    def test_small_spoof_inside_threshold_undetected(self):
        # A +2 m spoof hides under a 3 m disagreement threshold.
        fusion = MedianFusionDefense(n_sensors=3, disagreement_threshold=3.0)
        fused = fusion.fuse([measurement(52.0), measurement(50.0), measurement(50.1)])
        assert not fused.attack_suspected

    def test_history_and_suspected_times(self):
        fusion = MedianFusionDefense(n_sensors=2)
        fusion.fuse([measurement(50.0, t=0.0), measurement(50.0, t=0.0)])
        fusion.fuse([measurement(90.0, t=1.0), measurement(50.0, t=1.0)])
        assert len(fusion.history) == 2
        assert fusion.suspected_times == [1.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MedianFusionDefense(n_sensors=1)
        with pytest.raises(ConfigurationError):
            MedianFusionDefense(disagreement_threshold=0.0)
        with pytest.raises(ValueError):
            MedianFusionDefense(n_sensors=3).fuse([measurement(1.0)])


class TestClosedLoopRedundancy:
    def test_minority_delay_attack_survived(self):
        # 3 radars, attacker spoofs one: the median out-votes it.
        scenario = fig2_scenario("delay")
        result, fusion = run_redundant_defense(scenario, n_sensors=3, n_attacked=1)
        assert not result.collided
        # The +6 m outlier is also flagged almost immediately.
        flagged = [t for t in fusion.suspected_times if t >= 180.0]
        assert flagged and flagged[0] <= 185.0

    def test_broadcast_dos_defeats_redundancy(self):
        # Jamming is a broadcast attack: every co-located radar is hit,
        # the median is corrupted, and redundancy fails — the structural
        # weakness CRA+RLS does not share.
        scenario = fig2_scenario("dos")
        result, _ = run_redundant_defense(scenario, n_sensors=3, n_attacked=3)
        assert result.collided

    def test_clean_run_matches_single_sensor_behaviour(self):
        scenario = fig2_scenario("dos")
        result, fusion = run_redundant_defense(
            scenario, n_sensors=3, attack_enabled=False
        )
        assert not result.collided
        assert fusion.suspected_times == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_redundant_defense(fig2_scenario("dos"), n_sensors=3, n_attacked=5)
