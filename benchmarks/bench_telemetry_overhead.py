"""Extension bench — telemetry overhead and trace fidelity.

The telemetry layer's contract is "near-zero when disabled": every
instrumented site in the engine step loop, the radar sensing path and
the batch executor reduces to one module-global read plus a ``None``
check when no session is active.  Two claims are asserted here:

* **Disabled overhead < 2%.**  The disabled-path entry points
  (:func:`telemetry.span`, :func:`telemetry.incr`,
  :func:`telemetry.current`) are microbenchmarked directly, then the
  projected cost of *every* hook a 16-spec batch executes (engine
  stage checks per step, radar counters per measurement, batch/facade
  spans) is compared against the measured wall-clock of that same
  batch run with telemetry off.
* **Trace fidelity.**  A warm 16-spec batch served entirely from the
  run store is traced to JSONL; the file must replay one ``batch.run``
  span per run, every one flagged ``cached``, with matching store-hit
  counters.
"""

import json
import time

from conftest import emit
from repro import fig2_scenario, telemetry
from repro.analysis import render_table
from repro.simulation import RunSpec, execute_batch
from repro.store import RunStore
from repro.telemetry import load_events, load_trace

OVERHEAD_CEILING = 0.02  # the issue's <2% contract
N_SPECS = 16

#: Short horizon keeps the attack window empty — fast, clean runs.
FAST = fig2_scenario("dos", horizon=20.0)


def _specs():
    return [
        RunSpec(FAST.with_overrides(sensor_seed=seed), tag=f"seed{seed}")
        for seed in range(N_SPECS)
    ]


def _disabled_call_cost(calls: int = 200_000) -> float:
    """Mean seconds per disabled-path telemetry call."""
    assert not telemetry.enabled()
    start = time.perf_counter()
    for _ in range(calls // 4):
        telemetry.current()
        telemetry.incr("x")
        with telemetry.span("x"):
            pass
        telemetry.current()
    return (time.perf_counter() - start) / calls


def _hook_count(n_steps_per_run: int, n_runs: int) -> int:
    """Telemetry touch points one batch executes with tracing off.

    Per step: 3 engine stage checks + 1 radar ``current()`` (plus up
    to 3 conditional counters — counted as taken to stay conservative).
    Per run: the engine's end-of-run emit check.  Per batch: the
    facade span, the batch mark/summary gate.
    """
    per_step = 3 + 1 + 3
    return n_runs * (n_steps_per_run * per_step + 2) + 4


def bench_telemetry_overhead(benchmark, tmp_path_factory):
    specs = _specs()
    telemetry.disable()

    # -- measured batch wall-clock, telemetry off ----------------------
    def run_batch():
        start = time.perf_counter()
        batch = execute_batch(specs, workers=1)
        return batch, time.perf_counter() - start

    batch, batch_wall = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    assert batch.telemetry is None  # disabled sessions attach nothing
    n_steps = len(batch.records[0].payload.times)

    # -- disabled-path microbenchmark + projection ---------------------
    per_call = _disabled_call_cost()
    hooks = _hook_count(n_steps, N_SPECS)
    projected = per_call * hooks
    overhead = projected / batch_wall
    assert overhead < OVERHEAD_CEILING, (
        f"disabled telemetry projects to {overhead:.2%} of batch time "
        f"({hooks} hooks x {per_call * 1e9:.0f} ns vs {batch_wall:.3f} s); "
        f"contract is <{OVERHEAD_CEILING:.0%}"
    )

    # -- trace fidelity: warm cached batch, one span per run -----------
    tmp = tmp_path_factory.mktemp("telemetry")
    trace_path = tmp / "trace.jsonl"
    with RunStore(tmp / "runstore.sqlite") as store:
        execute_batch(specs, cache=store)  # cold: populate
        with telemetry.session(trace_path) as tele:
            warm = execute_batch(specs, cache=store)
        assert warm.cache_hits == N_SPECS

    runs = [e for e in load_events(trace_path) if e["name"] == "batch.run"]
    assert len(runs) == N_SPECS, f"expected {N_SPECS} run spans, got {len(runs)}"
    assert all(e["cached"] for e in runs), "warm runs must be flagged cached"
    assert all(e["ok"] for e in runs)
    assert sorted(e["tag"] for e in runs) == sorted(s.tag for s in specs)

    replayed = load_trace(trace_path)
    assert replayed.stage("batch.run").count == N_SPECS
    assert replayed.counters["batch.cache_hits"] == N_SPECS
    assert replayed.counters["store.hits"] == N_SPECS
    # Every line of the trace file is valid JSON.
    for line in trace_path.read_text().splitlines():
        json.loads(line)

    emit(
        "telemetry_overhead",
        render_table(
            [
                {
                    "quantity": "disabled call cost",
                    "value": f"{per_call * 1e9:.0f} ns",
                },
                {
                    "quantity": f"hooks per {N_SPECS}-spec batch",
                    "value": str(hooks),
                },
                {
                    "quantity": "projected disabled overhead",
                    "value": f"{overhead:.3%}",
                },
                {
                    "quantity": "ceiling (contract)",
                    "value": f"{OVERHEAD_CEILING:.0%}",
                },
                {
                    "quantity": "batch wall (telemetry off)",
                    "value": f"{batch_wall:.3f} s",
                },
                {
                    "quantity": "traced warm runs (all cached)",
                    "value": f"{len(runs)} / {N_SPECS}",
                },
                {
                    "quantity": "in-memory spans (warm batch)",
                    "value": str(tele.summary().stage("batch.run").count),
                },
            ],
            title="Telemetry: disabled-path overhead and trace fidelity",
        ),
    )
