"""Multi-target resolution (repro.radar.receiver.process_multi)."""

import numpy as np
import pytest

from repro.radar import FMCWParameters, RadarReceiver, beat_frequencies
from repro.radar.receiver import MultiTargetResolver, TargetDetection
from repro.radar.signal_synth import complex_awgn, synthesize_beat_signal

PARAMS = FMCWParameters()


def synth_scene(targets, seed=0, noise_power=1e-4):
    """Complex up/down segments for a list of ``(d, v)`` targets."""
    rng = np.random.default_rng(seed)
    n, fs = PARAMS.samples_per_segment, PARAMS.sample_rate
    up = np.zeros(n, dtype=complex)
    down = np.zeros(n, dtype=complex)
    for distance, velocity in targets:
        f_up, f_down = beat_frequencies(PARAMS, distance, velocity)
        up = up + synthesize_beat_signal(f_up, 1.0, n, fs, rng=rng)
        down = down + synthesize_beat_signal(f_down, 1.0, n, fs, rng=rng)
    up = up + complex_awgn(n, noise_power, rng)
    down = down + complex_awgn(n, noise_power, rng)
    return up, down


def make_receiver():
    return RadarReceiver(PARAMS, detection_threshold_factor=1.0 + 1e-9)


class TestMultiTargetResolver:
    def test_correct_pairing_beats_ghosts(self):
        # Two targets; the wrong pairing would invert to wild velocities.
        f1 = beat_frequencies(PARAMS, 40.0, -2.0)
        f2 = beat_frequencies(PARAMS, 90.0, 1.0)
        resolver = MultiTargetResolver(PARAMS)
        targets = resolver.pair([f1[0], f2[0]], [f1[1], f2[1]])
        assert targets[0].distance == pytest.approx(40.0, abs=0.1)
        assert targets[1].distance == pytest.approx(90.0, abs=0.1)
        assert targets[0].relative_velocity == pytest.approx(-2.0, abs=0.1)

    def test_shuffled_inputs_same_result(self):
        f1 = beat_frequencies(PARAMS, 40.0, -2.0)
        f2 = beat_frequencies(PARAMS, 90.0, 1.0)
        resolver = MultiTargetResolver(PARAMS)
        targets = resolver.pair([f2[0], f1[0]], [f1[1], f2[1]])
        assert targets[0].distance == pytest.approx(40.0, abs=0.1)
        assert targets[1].distance == pytest.approx(90.0, abs=0.1)

    def test_empty_input(self):
        assert MultiTargetResolver(PARAMS).pair([], []) == []

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            MultiTargetResolver(PARAMS).pair([1.0], [1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiTargetResolver(PARAMS, max_speed=0.0)


class TestProcessMulti:
    def test_two_targets_resolved(self):
        up, down = synth_scene([(40.0, -2.0), (90.0, 1.0)])
        targets = make_receiver().process_multi(up, down, 2)
        assert len(targets) == 2
        assert targets[0].distance == pytest.approx(40.0, abs=0.5)
        assert targets[1].distance == pytest.approx(90.0, abs=0.5)
        assert targets[0].relative_velocity == pytest.approx(-2.0, abs=0.3)
        assert targets[1].relative_velocity == pytest.approx(1.0, abs=0.3)

    def test_three_targets_resolved(self):
        scene = [(30.0, -3.0), (80.0, 0.0), (140.0, 5.0)]
        up, down = synth_scene(scene, seed=3)
        targets = make_receiver().process_multi(up, down, 3)
        for detected, (distance, velocity) in zip(targets, scene):
            assert detected.distance == pytest.approx(distance, abs=1.0)
            assert detected.relative_velocity == pytest.approx(velocity, abs=0.5)

    def test_single_target_consistent_with_process(self):
        up, down = synth_scene([(60.0, -1.5)], seed=5)
        receiver = make_receiver()
        single = receiver.process(up, down)
        multi = receiver.process_multi(up, down, 1)
        assert len(multi) == 1
        assert multi[0].distance == pytest.approx(single.distance, abs=0.2)

    def test_silence_returns_empty(self):
        rng = np.random.default_rng(0)
        n = PARAMS.samples_per_segment
        receiver = RadarReceiver(PARAMS)  # default 4x threshold
        up = complex_awgn(n, PARAMS.noise_floor, rng)
        down = complex_awgn(n, PARAMS.noise_floor, rng)
        assert receiver.process_multi(up, down, 2) == []

    def test_validation(self):
        up, down = synth_scene([(60.0, 0.0)])
        with pytest.raises(ValueError):
            make_receiver().process_multi(up, down, 0)

    def test_phantom_plus_real_target_scene(self):
        """A phantom injected alongside the real echo shows up as a
        second resolved target — the scene a tracker-level defense would
        have to disambiguate."""
        up, down = synth_scene([(35.0, -1.0), (10.0, -5.0)], seed=7)
        targets = make_receiver().process_multi(up, down, 2)
        distances = sorted(t.distance for t in targets)
        assert distances[0] == pytest.approx(10.0, abs=0.5)
        assert distances[1] == pytest.approx(35.0, abs=0.5)
