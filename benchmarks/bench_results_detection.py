"""Results ¶ (detection) — detection times and confusion counts.

The paper reports: "we were able to detect both the attacks at
k = 182 sec" and "Our detection method did not produce any false
positives or false negatives for both the attack scenarios."

This bench regenerates that table over all four figure scenarios, plus
a *stealthy ramped* delay variant (the offset grows over 60 s instead of
stepping), and contrasts CRA with a χ²-residual detector (the
PyCRA-style baseline the paper positions against).  The residual
detector fires on abrupt corruption — the DoS spikes and the +6 m step —
but misses the ramp, whose per-sample increments hide inside the noise
floor; CRA catches every variant at the first challenge with zero false
positives.
"""

from conftest import emit
from repro import AttackWindow, DelayInjectionAttack, fig2_scenario
from repro.analysis import detection_confusion, detection_latency, render_table
from repro.core import ChiSquareDetector
from repro.simulation.runner import run_figure_scenario


def _chi_square_detection(data):
    """Run the residual baseline over the attacked raw distance stream."""
    detector = ChiSquareDetector(threshold=6.63, persistence=2)
    attacked = data.attacked
    times = attacked.times
    measured = attacked.array("measured_distance")
    onset = data.scenario.attack.window.start
    for t, value in zip(times, measured):
        if value == 0.0:  # challenge instants carry no information
            continue
        detector.process(float(t), float(value))
    in_window = [t for t in detector.alarms if t >= onset]
    false_alarms = [t for t in detector.alarms if t < onset]
    return (in_window[0] if in_window else None), len(false_alarms)


def _stealthy_ramp_data():
    """Figure 2b with the offset ramped over 60 s instead of stepped."""
    attack = DelayInjectionAttack(
        AttackWindow(start=180.0, end=300.0), distance_offset=6.0, ramp_time=60.0
    )
    scenario = fig2_scenario("delay").with_overrides(
        name="fig2b-stealth-ramp", attack=attack
    )
    return run_figure_scenario(scenario)


def bench_results_detection(benchmark, figure_data):
    def build_table():
        rows = []
        panels = [
            ("fig2a", "DoS, constant decel"),
            ("fig2b", "Delay, constant decel"),
            ("fig3a", "DoS, decel+accel"),
            ("fig3b", "Delay, decel+accel"),
        ]
        datasets = [(figure_data(panel), label) for panel, label in panels]
        datasets.append((_stealthy_ramp_data(), "Delay, stealthy 60 s ramp"))
        for data, label in datasets:
            attack = data.scenario.attack
            confusion = detection_confusion(
                data.defended.detection_events, attack
            )
            chi_time, chi_false = _chi_square_detection(data)
            rows.append(
                {
                    "scenario": label,
                    "attack_onset_s": attack.window.start,
                    "cra_detection_s": data.detection_time(),
                    "cra_latency_s": detection_latency(data.defended, attack),
                    "cra_FP": confusion.false_positives,
                    "cra_FN": confusion.false_negatives,
                    "chi2_detection_s": chi_time,
                    "chi2_false_alarms": chi_false,
                }
            )
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    # Paper claims: both attacks detected at k = 182, zero FP / zero FN.
    assert all(row["cra_detection_s"] == 182.0 for row in rows)
    assert all(row["cra_FP"] == 0 and row["cra_FN"] == 0 for row in rows)
    # Contrast claim: the residual baseline misses (or badly lags) the
    # stealthy ramp, while CRA catches it at the first challenge.
    stealth = next(r for r in rows if "ramp" in r["scenario"])
    assert (
        stealth["chi2_detection_s"] is None
        or stealth["chi2_detection_s"] > stealth["cra_detection_s"] + 10.0
    )

    emit(
        "results_detection",
        render_table(
            rows,
            title=(
                "Detection results (paper: both attacks detected at k = 182 s, "
                "zero FP / zero FN)"
            ),
            precision=1,
        ),
    )
