"""Multi-vehicle platoon simulation.

The paper's case study is a two-vehicle car-following pair; an ACC
deployment is a *platoon* — a chain of followers, each ranging on its
predecessor with its own radar.  This module extends the closed-loop
engine to N followers and lets an attack target any one vehicle's radar,
answering two questions the paper's setting raises naturally:

* does a sensor attack on one vehicle propagate down the chain (string
  stability under attack)?
* does defending the attacked vehicle alone contain the disturbance?

Every follower runs the same ACC stack as the single-vehicle engine;
defended followers carry the full Algorithm 2 pipeline, undefended ones
the conventional coasting tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attacks.base import Attack
from repro.exceptions import ConfigurationError
from repro.radar.params import FMCWParameters
from repro.radar.sensor import FMCWRadarSensor
from repro.radar.tracker import AlphaBetaTracker
from repro.simulation.engine import build_defense_pipeline
from repro.simulation.scenario import DefenseConfig, Scenario, paper_challenge_times
from repro.types import DetectionEvent, TimeSeries
from repro.units import mph_to_mps
from repro.vehicle.acc import ACCSystem
from repro.vehicle.kinematics import advance_state
from repro.vehicle.leader import LeaderProfile
from repro.vehicle.params import ACCParameters
from repro.vehicle.state import VehicleState

__all__ = ["PlatoonScenario", "PlatoonResult", "PlatoonSimulation", "run_platoon"]

#: Radar-visible gap floor after a collision (matches the engine).
_POST_COLLISION_GAP_FLOOR = 0.5


@dataclass(frozen=True)
class PlatoonScenario:
    """A leader plus ``n_followers`` ACC vehicles in single file.

    Attributes
    ----------
    leader_profile:
        Acceleration profile of the head vehicle.
    n_followers:
        Number of ACC-equipped followers behind the leader.
    initial_gap:
        Initial bumper-to-bumper spacing between every adjacent pair, m.
    initial_speed:
        Initial speed of every vehicle, m/s.
    attack:
        Optional attack on one follower's radar.
    attacked_follower:
        Index (0 = directly behind the leader) of the radar under attack.
    defended_followers:
        Indices carrying the CRA+RLS defense; others use a plain tracker.
    """

    leader_profile: LeaderProfile
    n_followers: int = 4
    horizon: float = 300.0
    sample_period: float = 1.0
    initial_gap: float = 50.0
    initial_speed: float = mph_to_mps(65.0)
    acc_params: ACCParameters = field(default_factory=ACCParameters)
    radar_params: FMCWParameters = field(default_factory=FMCWParameters)
    challenge_times: Tuple[float, ...] = field(default_factory=paper_challenge_times)
    defense: DefenseConfig = field(default_factory=DefenseConfig)
    attack: Optional[Attack] = None
    attacked_follower: int = 0
    defended_followers: Tuple[int, ...] = ()
    fidelity: str = "equation"
    sensor_seed: int = 2017

    def __post_init__(self) -> None:
        if self.n_followers < 1:
            raise ConfigurationError(
                f"n_followers must be >= 1, got {self.n_followers}"
            )
        if not 0 <= self.attacked_follower < self.n_followers:
            raise ConfigurationError(
                f"attacked_follower {self.attacked_follower} out of range"
            )
        if any(not 0 <= i < self.n_followers for i in self.defended_followers):
            raise ConfigurationError("defended_followers index out of range")
        if self.initial_gap <= 0.0:
            raise ConfigurationError(
                f"initial_gap must be positive, got {self.initial_gap}"
            )

    def to_pair_scenario(self) -> Scenario:
        """The equivalent two-vehicle scenario (for pipeline building)."""
        return Scenario(
            name="platoon-member",
            leader_profile=self.leader_profile,
            attack=self.attack,
            horizon=self.horizon,
            sample_period=self.sample_period,
            initial_distance=self.initial_gap,
            leader_initial_speed=self.initial_speed,
            follower_initial_speed=self.initial_speed,
            acc_params=self.acc_params,
            radar_params=self.radar_params,
            challenge_times=self.challenge_times,
            defense=self.defense,
            fidelity=self.fidelity,
            sensor_seed=self.sensor_seed,
        )


@dataclass
class PlatoonResult:
    """Traces of one platoon run.

    ``traces`` holds ``leader_velocity`` plus per-follower series
    ``gap_<i>``, ``velocity_<i>`` and ``view_gap_<i>`` (what the
    controller saw).
    """

    n_followers: int
    traces: Dict[str, TimeSeries] = field(default_factory=dict)
    collision_times: Dict[int, float] = field(default_factory=dict)
    detection_events: List[DetectionEvent] = field(default_factory=list)

    def gap(self, follower: int) -> np.ndarray:
        """True gap of follower ``follower`` to its predecessor."""
        return self.traces[f"gap_{follower}"].as_arrays()[1]

    def velocity(self, follower: int) -> np.ndarray:
        """Velocity trace of one follower."""
        return self.traces[f"velocity_{follower}"].as_arrays()[1]

    def min_gap(self, follower: int) -> float:
        """Smallest true gap of one follower over the run."""
        return float(np.min(self.gap(follower)))

    def collided(self, follower: int) -> bool:
        """True when ``follower`` reached its predecessor."""
        return follower in self.collision_times

    def any_collision(self) -> bool:
        """True when any pair collided."""
        return bool(self.collision_times)

    def gap_deviation(self, follower: int, reference: "PlatoonResult") -> float:
        """Peak |gap - reference gap| of one follower, m."""
        return float(np.max(np.abs(self.gap(follower) - reference.gap(follower))))

    def string_amplification(self, reference: "PlatoonResult") -> List[float]:
        """Peak gap deviation (vs a clean reference run) per follower.

        A string-stable chain attenuates the disturbance downstream:
        the list decreases past the attacked vehicle.
        """
        return [
            self.gap_deviation(i, reference) for i in range(self.n_followers)
        ]


def run_platoon(
    scenario: PlatoonScenario, attack_enabled: bool = True
) -> "PlatoonResult":
    """Run one platoon configuration (mirrors ``run_single``).

    Defense is configured per-follower on the scenario
    (``defended_followers``); independent platoon runs can be fanned
    out together via :mod:`repro.simulation.batch` or the
    :func:`repro.run` facade.
    """
    return PlatoonSimulation(scenario, attack_enabled=attack_enabled).run()


class PlatoonSimulation:
    """Closed-loop simulation of a platoon scenario."""

    def __init__(self, scenario: PlatoonScenario, attack_enabled: bool = True):
        self.scenario = scenario
        self.attack = scenario.attack if attack_enabled else None

    def run(self) -> PlatoonResult:
        """Execute the run and return the platoon traces."""
        scenario = self.scenario
        schedule = scenario.to_pair_scenario().schedule()
        n = scenario.n_followers

        sensors = [
            FMCWRadarSensor(
                params=scenario.radar_params,
                fidelity=scenario.fidelity,
                seed=scenario.sensor_seed + i,
            )
            for i in range(n)
        ]
        controllers = [ACCSystem(scenario.acc_params) for _ in range(n)]
        pipelines = [
            build_defense_pipeline(scenario.to_pair_scenario())
            if i in scenario.defended_followers
            else None
            for i in range(n)
        ]
        trackers = [
            AlphaBetaTracker(sample_period=scenario.sample_period)
            if pipelines[i] is None
            else None
            for i in range(n)
        ]

        leader = VehicleState(
            position=0.0, velocity=scenario.initial_speed
        )
        followers = [
            VehicleState(
                position=-(i + 1) * scenario.initial_gap,
                velocity=scenario.initial_speed,
            )
            for i in range(n)
        ]

        result = PlatoonResult(n_followers=n)
        result.traces["leader_velocity"] = TimeSeries("leader_velocity")
        for i in range(n):
            for prefix in ("gap", "velocity", "view_gap"):
                name = f"{prefix}_{i}"
                result.traces[name] = TimeSeries(name)

        steps = int(scenario.horizon / scenario.sample_period) + 1
        for step_index in range(steps):
            time = step_index * scenario.sample_period
            transmit = not schedule.is_challenge(time)
            result.traces["leader_velocity"].append(time, leader.velocity)

            accelerations = []
            for i in range(n):
                predecessor = leader if i == 0 else followers[i - 1]
                vehicle = followers[i]
                true_gap = predecessor.position - vehicle.position
                if true_gap <= 0.0 and i not in result.collision_times:
                    result.collision_times[i] = time
                radar_gap = max(true_gap, _POST_COLLISION_GAP_FLOOR)
                relative_velocity = predecessor.velocity - vehicle.velocity

                effect = None
                if self.attack is not None and i == scenario.attacked_follower:
                    effect = self.attack.effect_at(
                        time, radar_gap, relative_velocity
                    )
                measurement = sensors[i].measure(
                    time,
                    radar_gap,
                    relative_velocity,
                    transmit=transmit,
                    effect=effect,
                )

                if pipelines[i] is not None:
                    safe = pipelines[i].process(
                        measurement, follower_speed=vehicle.velocity
                    )
                    view = (safe.distance, safe.relative_velocity)
                else:
                    detection = (
                        None
                        if measurement.is_zero_output(1e-9)
                        else (measurement.distance, measurement.relative_velocity)
                    )
                    view = trackers[i].update(detection)

                control = controllers[i].step(vehicle.velocity, view)
                accelerations.append(control.actual_acceleration)

                result.traces[f"gap_{i}"].append(time, true_gap)
                result.traces[f"velocity_{i}"].append(time, vehicle.velocity)
                result.traces[f"view_gap_{i}"].append(
                    time, view[0] if view is not None else 0.0
                )

            leader = advance_state(
                leader,
                scenario.leader_profile.acceleration(time),
                scenario.sample_period,
            )
            followers = [
                advance_state(followers[i], accelerations[i], scenario.sample_period)
                for i in range(n)
            ]

        attacked_pipeline = pipelines[scenario.attacked_follower]
        if attacked_pipeline is not None:
            result.detection_events = attacked_pipeline.detection_events
        return result
