"""Chirp-level simulation of the FMCW mixing stage.

The sensor's ``"signal"`` fidelity synthesizes the *dechirped* beat
tone directly (DESIGN.md §3).  This module implements the stage below
it — the actual RF physics the paper's §4.1 describes: the radar
"continuously transmits triangular frequency modulated waveforms", the
echo returns "shifted ... by a delay τ", and "the received signal is
mixed with a portion of the transmitted signal in a mixer".

For a linear chirp of slope ``S`` starting at frequency ``f0``, the
transmit phase is ``φ(t) = 2π (f0 t + S t²/2)``.  An echo delayed by
``τ`` (with Doppler factor folded into an effective carrier shift)
mixes to

    s_beat(t) = exp(j (φ(t) - φ(t - τ) + 2π f_D t))
              ≈ exp(j 2π ((S τ + f_D) t + f0 τ - S τ²/2))

i.e. a tone at ``S τ ± f_D`` — exactly the beat the direct synthesis
produces.  The module exists to *validate* that shortcut: the test
suite checks both paths produce the same extracted scene.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.radar.equations import round_trip_delay
from repro.radar.params import FMCWParameters
from repro.units import SPEED_OF_LIGHT

__all__ = ["chirp_phase", "dechirped_echo", "dechirp_scene"]


def chirp_phase(
    times: np.ndarray, start_frequency: float, slope: float
) -> np.ndarray:
    """Phase ``2π (f0 t + S t²/2)`` of a linear chirp, radians."""
    t = np.asarray(times, dtype=float)
    return 2.0 * np.pi * (start_frequency * t + 0.5 * slope * t * t)


def dechirped_echo(
    params: FMCWParameters,
    distance: float,
    relative_velocity: float,
    up_sweep: bool = True,
    amplitude: float = 1.0,
    n_samples: Optional[int] = None,
) -> np.ndarray:
    """Mix a delayed, Doppler-shifted echo against the transmit chirp.

    Works at baseband with the carrier handled analytically: the
    propagation delay contributes the range beat through the sweep
    slope, and the carrier phase rotation contributes the Doppler term
    ``2 v / λ``.  Positive ``relative_velocity`` means an opening gap
    (matching :mod:`repro.radar.equations`' convention).

    Returns the complex beat signal sampled at ``params.sample_rate``.
    """
    if distance <= 0.0:
        raise ValueError(f"distance must be positive, got {distance}")
    n = n_samples if n_samples is not None else params.samples_per_segment
    t = np.arange(n) / params.sample_rate
    slope = params.sweep_slope if up_sweep else -params.sweep_slope
    tau = round_trip_delay(distance)

    # Transmit phase minus delayed-echo phase (start frequency cancels
    # in the mixer up to the constant f0*tau term, kept for realism).
    f0 = params.carrier_frequency - (
        params.sweep_bandwidth / 2.0 if up_sweep else -params.sweep_bandwidth / 2.0
    )
    phase_range = (
        2.0 * np.pi * (slope * tau * t + f0 * tau - 0.5 * slope * tau * tau)
    )
    # Doppler from the moving target: the carrier picks up 2 v / λ.
    # An opening gap (positive relative velocity) lowers the received
    # frequency, i.e. subtracts from the up-sweep beat.
    doppler = 2.0 * relative_velocity / params.wavelength
    phase_doppler = -2.0 * np.pi * doppler * t
    signal = amplitude * np.exp(1j * (phase_range + phase_doppler))
    if not up_sweep:
        # Down-sweep mixer output sits at a negative baseband frequency;
        # the receiver's sideband-selection convention (Eqn 6 quotes the
        # positive magnitude) maps to conjugation of the IQ stream.
        signal = np.conj(signal)
    return signal


def dechirp_scene(
    params: FMCWParameters,
    distance: float,
    relative_velocity: float,
    amplitude: float = 1.0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Both dechirped segments (up, down) of one target."""
    up = dechirped_echo(
        params, distance, relative_velocity, up_sweep=True, amplitude=amplitude
    )
    down = dechirped_echo(
        params, distance, relative_velocity, up_sweep=False, amplitude=amplitude
    )
    return up, down
