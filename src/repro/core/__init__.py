"""The paper's primary contribution (§5): CRA detection + RLS estimation.

* :mod:`repro.core.rls` — Algorithm 1, the recursive least-squares
  estimator with exponential forgetting.
* :mod:`repro.core.regressors` — measurement-matrix (``h_k``) builders:
  polynomial-in-time and autoregressive bases.
* :mod:`repro.core.predictor` — RLS-based forecasting of a sensor
  channel during an attack, plus the two-channel radar estimator.
* :mod:`repro.core.cra` — challenge-response authentication: PRBS
  generator and challenge schedules.
* :mod:`repro.core.detector` — Algorithm 2's detection logic (lines
  7-9): compare receiver output against the expectation at challenge
  instants.
* :mod:`repro.core.pipeline` — Algorithm 2 end-to-end: ingest raw
  measurements, detect, and substitute RLS estimates for the duration
  of the attack.
* :mod:`repro.core.baselines` — comparison estimators (hold-last-value,
  LMS, Kalman) and a χ²-residual detector in the spirit of PyCRA [10].
"""

from repro.core.rls import RLSEstimator, rls_estimate
from repro.core.regressors import PolynomialBasis, ARBasis, RegressorBasis
from repro.core.predictor import (
    ChannelPredictor,
    Forecaster,
    MeasurementEstimator,
    RadarChannelEstimator,
)
from repro.core.dead_reckoning import DeadReckoningEstimator
from repro.core.cra import ChallengeSchedule, PRBSGenerator
from repro.core.adaptive_cra import AdaptiveChallengePolicy
from repro.core.detector import CRADetector
from repro.core.pipeline import SafeMeasurementPipeline, SafeMeasurement
from repro.core.baselines import (
    HoldLastValuePredictor,
    LMSPredictor,
    KalmanChannelPredictor,
    ChiSquareDetector,
    CUSUMDetector,
    SafetyEnvelopeDetector,
)

__all__ = [
    "RLSEstimator",
    "rls_estimate",
    "PolynomialBasis",
    "ARBasis",
    "RegressorBasis",
    "ChannelPredictor",
    "Forecaster",
    "MeasurementEstimator",
    "RadarChannelEstimator",
    "DeadReckoningEstimator",
    "ChallengeSchedule",
    "PRBSGenerator",
    "AdaptiveChallengePolicy",
    "CRADetector",
    "SafeMeasurementPipeline",
    "SafeMeasurement",
    "HoldLastValuePredictor",
    "LMSPredictor",
    "KalmanChannelPredictor",
    "ChiSquareDetector",
    "CUSUMDetector",
    "SafetyEnvelopeDetector",
]
