"""Canonical spec fingerprints — the run store's content addresses.

A run is fully determined by its :class:`~repro.simulation.batch.RunSpec`
(scenario including ``sensor_seed``, ``horizon`` and the defense
configuration, plus the ``attack_enabled`` / ``defended`` toggles) —
PR 1 made execution bit-deterministic in exactly those inputs.  This
module turns that determinism into an address: the spec is serialized
through the declarative dict form of :mod:`repro.simulation.spec`,
rendered as *canonical JSON* (sorted keys, no whitespace), salted with
a schema version, and hashed with SHA-256.

Two specs share a fingerprint iff they describe the same computation,
so a fingerprint can safely key a persistent result cache:

* the spec dict is produced from the :class:`Scenario` object, so
  numerically equal configurations normalize to the same dict;
* the :class:`RunSpec` ``tag`` is a display label, not an input to the
  simulation, and is deliberately **excluded**;
* bumping :data:`STORE_SCHEMA_VERSION` (done whenever the engine or the
  stored payload format changes behavior) invalidates every old entry
  without touching the database.

Platoon scenarios have no declarative spec form yet; their specs are
*uncacheable* and :func:`run_fingerprint` returns ``None`` for them —
cache-aware execution simply computes those runs as usual.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.simulation.batch import RunSpec
from repro.simulation.scenario import Scenario

__all__ = [
    "STORE_SCHEMA_VERSION",
    "canonical_json",
    "fingerprint_payload",
    "run_fingerprint",
]

#: Version salt mixed into every fingerprint.  Bump when the simulation
#: engine, the spec dict schema, or the stored payload codec changes in
#: a way that invalidates previously stored results.
STORE_SCHEMA_VERSION = 2  # 2: payloads carry defense_stats metadata


def _coerce_scalar(obj: Any) -> Any:
    """JSON ``default=`` hook: unwrap numpy scalars, reject the rest."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"object of type {type(obj).__name__} is not canonically serializable"
    )


def canonical_json(obj: Any) -> str:
    """Render ``obj`` as canonical JSON: sorted keys, no whitespace.

    Deterministic for the JSON-compatible dicts produced by
    :func:`repro.simulation.spec.scenario_to_dict` (numpy scalars are
    unwrapped via ``.item()``); any other object type raises
    ``TypeError`` rather than hashing something unstable.
    """
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        default=_coerce_scalar,
    )


def fingerprint_payload(spec: RunSpec) -> Optional[Dict[str, Any]]:
    """The pre-hash dict a spec's fingerprint is computed from.

    Exposed for debugging and tests ("why did these two runs not share
    a cache entry?").  ``None`` for uncacheable specs (platoons).
    """
    if not isinstance(spec.scenario, Scenario):
        return None
    from repro.simulation.spec import scenario_to_dict

    return {
        "schema": STORE_SCHEMA_VERSION,
        "scenario": scenario_to_dict(spec.scenario),
        "attack_enabled": bool(spec.attack_enabled),
        "defended": bool(spec.defended),
    }


def run_fingerprint(spec: RunSpec) -> Optional[str]:
    """SHA-256 content address of one run, as a hex digest.

    ``None`` when the spec is uncacheable (platoon scenarios, which
    have no declarative spec form).
    """
    payload = fingerprint_payload(spec)
    if payload is None:
        return None
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
