"""Extension bench — detector zoo vs attack stealth.

Sweeps the delay-injection ramp time (0 = the paper's step, longer =
stealthier) and runs four detectors over the same attacked radar
stream:

* CRA (the paper's defense) — latency bounded by the challenge schedule,
  independent of stealth;
* χ²-residual (PyCRA-style [10]) — catches abrupt corruption only;
* CUSUM — integrates small biases, still blind to smooth ramps that a
  constant-velocity reference tracks as a maneuver;
* safety envelope (Tiwari-style [12]) — catches rate/value violations,
  blind to anything inside the learned envelope.

The regenerated table is the quantitative version of the paper's
"unlike [10], our method..." positioning.
"""

from conftest import emit
from repro import (
    AttackWindow,
    ChiSquareDetector,
    CUSUMDetector,
    DelayInjectionAttack,
    SafetyEnvelopeDetector,
    fig2_scenario,
    run,
)
from repro.analysis import render_table

ONSET = 180.0


def _attacked_stream(ramp_time):
    attack = DelayInjectionAttack(
        AttackWindow(ONSET, 300.0), distance_offset=6.0, ramp_time=ramp_time
    )
    scenario = fig2_scenario("delay").with_overrides(
        name=f"ramp-{ramp_time:.0f}", attack=attack
    )
    defended = run(scenario, defended=True)
    undefended = run(scenario, defended=False)
    times = undefended.times
    measured = undefended.array("measured_distance")
    cra_detections = [t for t in defended.detection_times if t >= ONSET]
    return times, measured, cra_detections


def _first_alarm(detector, times, values):
    for t, value in zip(times, values):
        if value == 0.0:  # challenge instants: no measurement
            continue
        if detector.process(float(t), float(value)) and t >= ONSET:
            return float(t)
    return None


def bench_detection_baselines(benchmark):
    def sweep():
        rows = []
        for ramp in (0.0, 20.0, 60.0, 118.0):
            times, measured, cra = _attacked_stream(ramp)
            rows.append(
                {
                    "ramp_time_s": ramp,
                    "cra_s": cra[0] if cra else None,
                    "chi2_s": _first_alarm(
                        ChiSquareDetector(), times, measured
                    ),
                    "cusum_s": _first_alarm(CUSUMDetector(), times, measured),
                    "envelope_s": _first_alarm(
                        SafetyEnvelopeDetector(
                            training_samples=100, value_bounds=(2.0, 200.0)
                        ),
                        times,
                        measured,
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape claims: CRA detects every variant at the first challenge
    # (182 s); every residual/envelope baseline misses (or badly lags)
    # the stealthiest ramp.
    assert all(row["cra_s"] == 182.0 for row in rows)
    stealthiest = rows[-1]
    for key in ("chi2_s", "cusum_s", "envelope_s"):
        assert stealthiest[key] is None or stealthiest[key] > 200.0
    # The step attack, by contrast, is visible to residual detection.
    step = rows[0]
    assert step["chi2_s"] is not None and step["chi2_s"] <= 183.0

    emit(
        "detection_baselines",
        render_table(
            rows,
            title=(
                "First post-onset alarm (s) vs spoof ramp time — delay attack "
                "from k = 180 s ('-' = never detected by t = 300 s)"
            ),
        ),
    )
