"""Exception hierarchy (repro.exceptions) — API stability contract."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    EstimatorNotTrainedError,
    RadarRangeError,
    ReproError,
    SimulationError,
    SpectralEstimationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            RadarRangeError,
            EstimatorNotTrainedError,
            SimulationError,
            SpectralEstimationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_single_except_clause_catches_library_errors(self):
        from repro import FMCWParameters

        with pytest.raises(ReproError):
            FMCWParameters(sweep_time=-1.0)

    def test_library_validation_uses_configuration_error(self):
        from repro import ACCParameters

        with pytest.raises(ConfigurationError):
            ACCParameters(headway_time=0.0)

    def test_estimator_error_raised_when_untrained(self):
        from repro.core import ChannelPredictor

        with pytest.raises(EstimatorNotTrainedError):
            ChannelPredictor().forecast(1.0)

    def test_spectral_error_raised_on_short_signal(self):
        import numpy as np

        from repro.radar import root_music

        with pytest.raises(SpectralEstimationError):
            root_music(np.ones(4, dtype=complex), 2, 1e5)
