"""Measurement-noise models for the LTI plant (paper §3).

The paper assumes Gaussian measurement noise ``v_k ~ N(0, R)`` with zero
mean and covariance ``R = E[v_k v_k^T]`` and no process noise.  The noise
objects here are deliberately stateful iterators over a seeded generator
so that every simulation is reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

__all__ = ["MeasurementNoise", "GaussianNoise", "NoNoise"]


class MeasurementNoise(ABC):
    """Interface for additive measurement-noise sources.

    A noise source produces one draw of ``v_k`` (shape ``(p,)``) per call.
    """

    @abstractmethod
    def sample(self) -> np.ndarray:
        """Draw the next noise vector ``v_k``."""

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Dimension ``p`` of the measurement vector."""

    @property
    @abstractmethod
    def covariance(self) -> np.ndarray:
        """The covariance matrix ``R`` of the noise (``p x p``)."""


class GaussianNoise(MeasurementNoise):
    """Zero-mean Gaussian noise ``v_k ~ N(0, R)``.

    Parameters
    ----------
    covariance:
        Either a scalar variance (1-D measurement), a 1-D array of
        per-channel variances (diagonal ``R``), or a full ``p x p``
        positive semi-definite covariance matrix.
    seed:
        Seed for the underlying generator; required for reproducibility.
    """

    def __init__(self, covariance: Union[float, np.ndarray], seed: Optional[int] = None):
        cov = np.atleast_1d(np.asarray(covariance, dtype=float))
        if cov.ndim == 1:
            if np.any(cov < 0.0):
                raise ValueError("variances must be non-negative")
            cov = np.diag(cov)
        if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
            raise ValueError(f"covariance must be square, got shape {cov.shape}")
        if not np.allclose(cov, cov.T):
            raise ValueError("covariance must be symmetric")
        eigvals = np.linalg.eigvalsh(cov)
        if np.any(eigvals < -1e-12):
            raise ValueError("covariance must be positive semi-definite")
        self._cov = cov
        self._rng = np.random.default_rng(seed)
        # Cholesky-like factor that also works for singular R.
        eigvals_clipped = np.clip(eigvals, 0.0, None)
        vecs = np.linalg.eigh(cov)[1]
        self._factor = vecs @ np.diag(np.sqrt(eigvals_clipped))

    def sample(self) -> np.ndarray:
        z = self._rng.standard_normal(self._cov.shape[0])
        return self._factor @ z

    @property
    def dimension(self) -> int:
        return self._cov.shape[0]

    @property
    def covariance(self) -> np.ndarray:
        return self._cov.copy()


class NoNoise(MeasurementNoise):
    """A noise source that always returns zero (ideal sensor)."""

    def __init__(self, dimension: int = 1):
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        self._dim = int(dimension)

    def sample(self) -> np.ndarray:
        return np.zeros(self._dim)

    @property
    def dimension(self) -> int:
        return self._dim

    @property
    def covariance(self) -> np.ndarray:
        return np.zeros((self._dim, self._dim))
