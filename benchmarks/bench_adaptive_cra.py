"""Extension bench — adaptive challenge scheduling and recovery latency.

With the paper's static schedule, the *end* of an attack is only
noticed at the next scheduled challenge; until then the vehicle flies
on estimates although the sensor is healthy again.  This bench measures
that recovery latency for a finite DoS burst under the static schedule
and under :class:`AdaptiveChallengePolicy` at several alert periods.
Detection latency (bounded by the *base* schedule, which stays secret)
is unchanged; only recovery accelerates.
"""

from conftest import emit
from repro import AttackWindow, DoSJammingAttack, fig2_scenario, run
from repro.analysis import render_table

ATTACK_END = 230.0


def _evaluate(adaptive_period):
    scenario = fig2_scenario("dos").with_overrides(
        name="finite-dos",
        attack=DoSJammingAttack(AttackWindow(182.0, ATTACK_END)),
        adaptive_challenge_period=adaptive_period,
    )
    result = run(scenario, defended=True)
    clears = [
        e.time
        for e in result.detection_events
        if not e.attack_detected and e.time > ATTACK_END
    ]
    estimated = result.array("estimated_flag")
    return {
        "schedule": "static"
        if adaptive_period is None
        else f"adaptive {adaptive_period:.0f} s",
        "detection_s": result.detection_times[0],
        "alarm_cleared_s": min(clears),
        "recovery_latency_s": min(clears) - ATTACK_END,
        "estimated_samples": int(estimated.sum()),
        "collided": result.collided,
    }


def bench_adaptive_cra(benchmark):
    def sweep():
        return [_evaluate(period) for period in (None, 8.0, 4.0, 2.0)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape claims: identical detection; monotonically faster recovery
    # with faster alert probing; everyone stays safe.
    assert all(row["detection_s"] == 182.0 for row in rows)
    assert all(not row["collided"] for row in rows)
    latencies = [row["recovery_latency_s"] for row in rows]
    assert latencies[0] >= latencies[1] >= latencies[2] >= latencies[3]
    assert latencies[3] <= 3.0

    emit(
        "adaptive_cra",
        render_table(
            rows,
            title="Adaptive challenge scheduling: recovery latency after a "
            f"DoS burst ending at t = {ATTACK_END:.0f} s",
        ),
    )
