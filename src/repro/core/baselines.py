"""Baseline estimators and detectors for comparison studies.

The paper positions CRA+RLS against redundancy-based estimation and the
χ²-residual detection of PyCRA (Shoukry et al. [10]).  To make the
ablation benches meaningful, this module provides:

* :class:`HoldLastValuePredictor` — the trivial recovery strategy: keep
  feeding the controller the last trusted value.
* :class:`LMSPredictor` — least-mean-squares adaptation on the same
  regressor bases as RLS (cheaper per step, slower convergence).
* :class:`KalmanChannelPredictor` — a constant-velocity Kalman filter
  per channel, propagated open-loop during the attack.
* :class:`ChiSquareDetector` — a residual-based detector that flags an
  attack when the normalized innovation energy exceeds a χ² threshold;
  unlike CRA it needs no sensor modification, but it has a noise-floor
  false-positive rate and misses stealthy offsets.
* :class:`CUSUMDetector` — a cumulative-sum change detector on the same
  innovations; integrates small persistent biases, so it eventually
  catches slow ramps that χ² misses — at the cost of a latency that
  grows as the attack gets stealthier (CRA's latency is set only by the
  challenge schedule).
* :class:`SafetyEnvelopeDetector` — the "safety envelope" idea of
  Tiwari et al. [12]: learn per-channel min/max/rate bounds from clean
  data and alarm on violation.  Catches gross corruption (DoS spikes)
  but is blind to any spoof that stays inside the learned envelope.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.predictor import Forecaster
from repro.core.regressors import PolynomialBasis, RegressorBasis
from repro.exceptions import EstimatorNotTrainedError

__all__ = [
    "HoldLastValuePredictor",
    "LMSPredictor",
    "KalmanChannelPredictor",
    "ChiSquareDetector",
    "CUSUMDetector",
    "SafetyEnvelopeDetector",
]


class HoldLastValuePredictor(Forecaster):
    """Forecast by repeating the last trusted observation."""

    def __init__(self):
        self._last: Optional[Tuple[float, float]] = None

    def observe(self, time: float, value: float) -> None:
        self._last = (time, value)

    def forecast(self, time: float) -> float:
        if self._last is None:
            raise EstimatorNotTrainedError("no observation to hold")
        return self._last[1]

    @property
    def trained(self) -> bool:
        return self._last is not None


class LMSPredictor(Forecaster):
    """Least-mean-squares forecaster on a polynomial time basis.

    The normalized-LMS update ``w += μ e h / (ε + hᵀh)`` replaces the
    RLS gain computation; convergence is slower and depends on the step
    size ``μ``, which is exactly the contrast the ablation bench shows.
    """

    def __init__(
        self,
        basis: Optional[RegressorBasis] = None,
        step_size: float = 0.5,
        time_scale: float = 100.0,
        min_training_samples: int = 5,
    ):
        if not 0.0 < step_size <= 2.0:
            raise ValueError(f"step_size must be in (0, 2], got {step_size}")
        self.basis = basis if basis is not None else PolynomialBasis(degree=1)
        if self.basis.uses_history:
            raise ValueError("LMSPredictor supports history-free bases only")
        self.step_size = float(step_size)
        self.time_scale = float(time_scale)
        self.min_training_samples = int(min_training_samples)
        self._weights = np.zeros(self.basis.n_params)
        self._reference_time: Optional[float] = None
        self._count = 0

    def _normalize(self, time: float) -> float:
        reference = self._reference_time if self._reference_time is not None else time
        return (time - reference) / self.time_scale

    def observe(self, time: float, value: float) -> None:
        if self._reference_time is None:
            self._reference_time = time
        h = self.basis.regressor(self._normalize(time), [])
        error = value - float(self._weights @ h)
        norm = 1e-12 + float(h @ h)
        self._weights = self._weights + self.step_size * error * h / norm
        self._count += 1

    def forecast(self, time: float) -> float:
        if not self.trained:
            raise EstimatorNotTrainedError(
                f"LMS needs {self.min_training_samples} samples, has {self._count}"
            )
        h = self.basis.regressor(self._normalize(time), [])
        return float(self._weights @ h)

    @property
    def trained(self) -> bool:
        return self._count >= self.min_training_samples


class KalmanChannelPredictor(Forecaster):
    """Constant-velocity Kalman filter for one scalar channel.

    State ``[value, rate]`` with white-noise acceleration of spectral
    density ``process_noise``; measurements are the channel value with
    variance ``measurement_noise``.  Forecasting propagates the state
    open-loop to the requested time.
    """

    def __init__(
        self,
        process_noise: float = 0.05,
        measurement_noise: float = 0.25,
        min_training_samples: int = 3,
    ):
        if process_noise <= 0.0 or measurement_noise <= 0.0:
            raise ValueError("noise intensities must be positive")
        self.process_noise = float(process_noise)
        self.measurement_noise = float(measurement_noise)
        self.min_training_samples = int(min_training_samples)
        self._state = np.zeros(2)
        self._cov = np.diag([1e4, 1e2])
        self._last_time: Optional[float] = None
        self._count = 0

    def _transition(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        F = np.array([[1.0, dt], [0.0, 1.0]])
        q = self.process_noise
        Q = q * np.array(
            [[dt**3 / 3.0, dt**2 / 2.0], [dt**2 / 2.0, dt]]
        )
        return F, Q

    def _propagate(self, to_time: float) -> Tuple[np.ndarray, np.ndarray]:
        if self._last_time is None or to_time <= self._last_time:
            return self._state.copy(), self._cov.copy()
        F, Q = self._transition(to_time - self._last_time)
        return F @ self._state, F @ self._cov @ F.T + Q

    def observe(self, time: float, value: float) -> None:
        if self._last_time is None:
            self._state = np.array([value, 0.0])
            self._last_time = time
            self._count = 1
            return
        state, cov = self._propagate(time)
        H = np.array([1.0, 0.0])
        innovation = value - float(H @ state)
        S = float(H @ cov @ H) + self.measurement_noise
        K = cov @ H / S
        self._state = state + K * innovation
        self._cov = (np.eye(2) - np.outer(K, H)) @ cov
        self._last_time = time
        self._count += 1

    def innovation_statistic(self, time: float, value: float) -> float:
        """Normalized innovation squared ``e²/S`` without updating.

        The χ²(1) statistic residual detectors threshold on.
        """
        state, cov = self._propagate(time)
        H = np.array([1.0, 0.0])
        innovation = value - float(H @ state)
        S = float(H @ cov @ H) + self.measurement_noise
        return innovation * innovation / S

    def forecast(self, time: float) -> float:
        if not self.trained:
            raise EstimatorNotTrainedError(
                f"Kalman filter needs {self.min_training_samples} samples, "
                f"has {self._count}"
            )
        state, _ = self._propagate(time)
        return float(state[0])

    @property
    def trained(self) -> bool:
        return self._count >= self.min_training_samples


class ChiSquareDetector:
    """Residual (χ²) attack detector over a scalar measurement channel.

    Maintains a :class:`KalmanChannelPredictor` of the channel and flags
    an attack when the normalized innovation exceeds ``threshold``
    (e.g. 6.63 for χ²(1) at the 1% level) for ``persistence``
    consecutive samples.  The persistence requirement trades detection
    latency against noise-induced false alarms — a trade-off CRA avoids
    entirely, which is the comparison the detection bench draws.
    """

    def __init__(
        self,
        threshold: float = 6.63,
        persistence: int = 2,
        predictor: Optional[KalmanChannelPredictor] = None,
    ):
        if threshold <= 0.0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if persistence < 1:
            raise ValueError(f"persistence must be >= 1, got {persistence}")
        self.threshold = float(threshold)
        self.persistence = int(persistence)
        self.predictor = predictor if predictor is not None else KalmanChannelPredictor()
        self._exceed_streak = 0
        self._alarms: List[float] = []
        self._statistics: List[Tuple[float, float]] = []

    @property
    def alarms(self) -> List[float]:
        """Times at which the detector raised an alarm."""
        return list(self._alarms)

    @property
    def statistics(self) -> List[Tuple[float, float]]:
        """Recorded ``(time, χ² statistic)`` pairs."""
        return list(self._statistics)

    def process(self, time: float, value: float) -> bool:
        """Ingest one sample; returns True when an alarm fires now."""
        if not self.predictor.trained:
            self.predictor.observe(time, value)
            return False
        statistic = self.predictor.innovation_statistic(time, value)
        self._statistics.append((time, statistic))
        if statistic > self.threshold:
            self._exceed_streak += 1
        else:
            self._exceed_streak = 0
            self.predictor.observe(time, value)
        if self._exceed_streak >= self.persistence:
            self._alarms.append(time)
            self._exceed_streak = 0
            return True
        return False


class CUSUMDetector:
    """Two-sided CUSUM change detection on Kalman innovations.

    Accumulates the normalized innovation ``e/√S`` minus a drift
    allowance ``k`` in both directions:

        g⁺ = max(0, g⁺ + e_n - k)
        g⁻ = max(0, g⁻ - e_n - k)

    and alarms when either side exceeds ``h``.  Because the statistic
    *integrates*, a small persistent bias (a stealthy spoof ramp) is
    eventually caught — with latency inversely proportional to the bias
    magnitude, which is the structural contrast with CRA's
    schedule-bounded latency.

    Parameters
    ----------
    drift:
        Per-sample drift allowance ``k`` in innovation standard
        deviations; absorbs model mismatch on clean data.
    threshold:
        Alarm level ``h`` in accumulated standard deviations.
    update_gate:
        Innovations above this many standard deviations are treated as
        suspect and NOT used to update the reference model — without
        the gate, the filter would absorb a step offset within a couple
        of samples and the accumulators would never reach the alarm
        level.
    predictor:
        Innovation source; a default constant-velocity Kalman filter is
        built when omitted.  Note that a constant-velocity reference
        tracks any *smooth* spoof ramp as if it were a legitimate
        maneuver — residual detection fundamentally cannot separate the
        two, which is the contrast the detection bench draws with CRA.
    """

    def __init__(
        self,
        drift: float = 0.5,
        threshold: float = 8.0,
        update_gate: float = 3.0,
        predictor: Optional[KalmanChannelPredictor] = None,
    ):
        if drift < 0.0:
            raise ValueError(f"drift must be >= 0, got {drift}")
        if threshold <= 0.0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if update_gate <= 0.0:
            raise ValueError(f"update_gate must be positive, got {update_gate}")
        self.drift = float(drift)
        self.threshold = float(threshold)
        self.update_gate = float(update_gate)
        self.predictor = predictor if predictor is not None else KalmanChannelPredictor()
        self._g_pos = 0.0
        self._g_neg = 0.0
        self._alarms: List[float] = []

    @property
    def alarms(self) -> List[float]:
        """Times at which the detector raised an alarm."""
        return list(self._alarms)

    @property
    def statistic(self) -> float:
        """Current max of the two CUSUM accumulators."""
        return max(self._g_pos, self._g_neg)

    def process(self, time: float, value: float) -> bool:
        """Ingest one sample; returns True when an alarm fires now."""
        if not self.predictor.trained:
            self.predictor.observe(time, value)
            return False
        statistic = self.predictor.innovation_statistic(time, value)
        normalized = math.sqrt(statistic)
        # Recover the innovation sign from the raw prediction.
        sign = 1.0 if value >= self.predictor.forecast(time) else -1.0
        e_n = sign * normalized
        self._g_pos = max(0.0, self._g_pos + e_n - self.drift)
        self._g_neg = max(0.0, self._g_neg - e_n - self.drift)
        fired = self._g_pos > self.threshold or self._g_neg > self.threshold
        if fired:
            self._alarms.append(time)
            self._g_pos = 0.0
            self._g_neg = 0.0
        if not fired and normalized <= self.update_gate:
            # Only innovations consistent with the model refine it;
            # suspect samples are quarantined.
            self.predictor.observe(time, value)
        return fired


class SafetyEnvelopeDetector:
    """Safety-envelope detection in the spirit of Tiwari et al. [12].

    The envelope has two parts:

    * **a-priori value bounds** — the physically admissible range of the
      channel (e.g. the radar's 2-200 m operating envelope), supplied by
      the caller because a trending channel (a closing gap) legitimately
      walks far beyond any range observed during training;
    * **learned rate bounds** — the per-second change observed over a
      clean training phase, inflated by a relative ``margin``.

    After training the detector alarms whenever a sample leaves the
    value bounds or its rate leaves the learned rate envelope.

    Parameters
    ----------
    training_samples:
        Clean samples used to learn the rate envelope.
    margin:
        Relative inflation of the learned rate bounds (0.5 = 50%).
    value_bounds:
        A-priori ``(lo, hi)`` admissible values, or None to disable
        value checking.
    """

    def __init__(
        self,
        training_samples: int = 60,
        margin: float = 0.5,
        value_bounds: Optional[Tuple[float, float]] = None,
    ):
        if training_samples < 2:
            raise ValueError(
                f"training_samples must be >= 2, got {training_samples}"
            )
        if margin < 0.0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        if value_bounds is not None and value_bounds[0] >= value_bounds[1]:
            raise ValueError(f"invalid value bounds {value_bounds}")
        self.training_samples = int(training_samples)
        self.margin = float(margin)
        self.value_bounds = value_bounds
        self._values: List[float] = []
        self._last: Optional[Tuple[float, float]] = None
        self._bounds: Optional[Tuple[float, float]] = None
        self._alarms: List[float] = []

    @property
    def trained(self) -> bool:
        """True once the envelope is learned."""
        return self._bounds is not None

    @property
    def alarms(self) -> List[float]:
        """Times at which the detector raised an alarm."""
        return list(self._alarms)

    @property
    def bounds(self) -> Optional[Tuple[float, float]]:
        """Learned ``(rate_lo, rate_hi)`` once trained."""
        return self._bounds

    def _learn(self) -> None:
        rates = np.diff(np.asarray(self._values))
        rate_span = max(1e-9, float(rates.max() - rates.min()))
        self._bounds = (
            float(rates.min()) - self.margin * rate_span,
            float(rates.max()) + self.margin * rate_span,
        )

    def process(self, time: float, value: float) -> bool:
        """Ingest one sample; returns True when the envelope is violated."""
        if self._bounds is None:
            self._values.append(float(value))
            self._last = (time, float(value))
            if len(self._values) >= self.training_samples:
                self._learn()
            return False
        rate_lo, rate_hi = self._bounds
        violated = False
        if self.value_bounds is not None:
            violated = value < self.value_bounds[0] or value > self.value_bounds[1]
        if self._last is not None and time > self._last[0]:
            rate = (value - self._last[1]) / (time - self._last[0])
            violated = violated or rate < rate_lo or rate > rate_hi
        self._last = (time, float(value))
        if violated:
            self._alarms.append(time)
        return violated
