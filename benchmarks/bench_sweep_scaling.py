"""Extension bench — sharded run store + adaptive sweep scheduler.

Drives a 10,000-run heterogeneous sweep (DoS and delay attacks x
defended/undefended x five radar-noise levels, 500 seeds per cell)
through a fresh :class:`repro.store.sharded.ShardedRunStore` at 1 and
at 4 workers, then compares the adaptive scheduler against the fixed
grid on a detection-rate panel.

Asserted contracts:

* **determinism** — both worker counts produce identical per-cell
  outcome sequences, both stores hold the same 10,000 fingerprints,
  and the raw payload blobs are byte-identical shard-to-shard (the
  4-worker store was written *by the pool workers*, one shard handle
  each — see ``_StoreWritingPostprocess``);
* **scaling** — on a machine with >= 4 usable cores the 4-worker
  sweep completes >= 3x faster (on smaller containers the timings are
  emitted but the floor is not asserted — nothing to parallelize onto);
* **replay** — re-running the sweep against the populated store
  answers all 10,000 runs from the cache (``batch.cache_hits``) with
  outcome sequences equal to the cold run, i.e. replay is
  bit-identical;
* **adaptive savings** — on detection-rate cells the adaptive
  schedule reaches the same converged confidence interval as the
  fixed grid with >= 20% fewer executed runs.

The measured numbers are written to ``BENCH_sweep.json`` at the repo
root (committed, like ``BENCH_service.json``) so sweep throughput is
tracked across revisions.
"""

import json
import os
import platform
import time
from pathlib import Path

from conftest import emit
from repro import fig2_scenario, telemetry
from repro.analysis import render_table
from repro.attacks import AttackWindow, DoSJammingAttack
from repro.simulation import RunSpec, execute_batch
from repro.simulation.sweep import SweepCell, run_sweep
from repro.store import ShardedRunStore

ATTACKS = ("dos", "delay")
NOISE_LEVELS = (0.1, 0.5, 1.0, 2.0, 4.0)
DEFENDED = (True, False)
RUNS_PER_CELL = 500  # 2 attacks x 2 toggles x 5 noise levels x 500 = 10,000
SHARDS = 8
WORKERS = 4
SPEEDUP_FLOOR = 3.0

ADAPTIVE_TARGET_CI = 0.05
ADAPTIVE_MIN_RUNS = 8
ADAPTIVE_MAX_RUNS = 64
SAVINGS_FLOOR = 0.20
PAYLOAD_SAMPLE = 32

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def _pool_available() -> bool:
    """Probe whether a process pool actually runs here (cheap runs)."""
    probe = execute_batch(
        [RunSpec(fig2_scenario("dos", horizon=10.0)) for _ in range(2)],
        workers=2,
    )
    return probe.parallel


def _scaling_cells():
    """The heterogeneous 20-cell grid behind the 10k-run sweep."""
    cells = []
    for attack in ATTACKS:
        for defended in DEFENDED:
            for noise in NOISE_LEVELS:
                cells.append(
                    SweepCell(
                        key=f"{attack}-{'def' if defended else 'undef'}-n{noise}",
                        scenario=fig2_scenario(
                            attack, horizon=10.0, distance_noise_std=noise
                        ),
                        defended=defended,
                    )
                )
    return cells


def _detection_cells():
    """Detection-rate cells whose attack actually falls in the horizon.

    The paper's DoS window opens at t=182 s; at bench horizons nothing
    would ever be attacked (or challenged), so these cells move the
    window and the challenge schedule inside a 12 s run.
    """
    cells = []
    for dropout in (0.0, 0.05, 0.1, 0.2):
        base = fig2_scenario("dos", horizon=12.0, dropout_rate=dropout)
        cells.append(
            SweepCell(
                key=f"dos-early-drop{dropout}",
                scenario=base.with_overrides(
                    attack=DoSJammingAttack(
                        window=AttackWindow(start=2.0, end=12.0),
                        radar_params=base.radar_params,
                    ),
                    challenge_times=(4.0, 8.0),
                ),
            )
        )
    return cells


def _timed_sweep(cells, store, workers):
    start = time.perf_counter()
    result = run_sweep(
        cells,
        metric="min_gap",
        schedule="fixed",
        max_runs=RUNS_PER_CELL,
        workers=workers,
        cache=store,
    )
    return result, time.perf_counter() - start


def _payload_index(store, sample):
    """fingerprint -> raw payload blob for a deterministic sample."""
    wanted = set(sample)
    return {
        row["fingerprint"]: row["payload"]
        for row in store.iter_rows()
        if row["fingerprint"] in wanted
    }


def bench_sweep_scaling(benchmark, tmp_path_factory):
    cells = _scaling_cells()
    total_runs = len(cells) * RUNS_PER_CELL
    base = tmp_path_factory.mktemp("sweep-scaling")

    def sweep():
        measured = {}
        stores = {}
        for workers in (1, WORKERS):
            store = ShardedRunStore(base / f"shards-w{workers}", shards=SHARDS)
            result, wall = _timed_sweep(cells, store, workers)
            measured[workers] = (result, wall)
            stores[workers] = store

        # Warm replay against the pool-written store: every run must
        # come back from the shards, none from the engine.
        with telemetry.session() as tele:
            replay, replay_wall = _timed_sweep(cells, stores[WORKERS], 1)
        measured["replay"] = (replay, replay_wall)
        measured["replay_counters"] = dict(tele.counters)

        adaptive_kwargs = dict(
            metric="detection_rate",
            target_ci=ADAPTIVE_TARGET_CI,
            min_runs=ADAPTIVE_MIN_RUNS,
            max_runs=ADAPTIVE_MAX_RUNS,
        )
        detection = _detection_cells()
        measured["fixed"] = run_sweep(
            detection, schedule="fixed", **adaptive_kwargs
        )
        measured["adaptive"] = run_sweep(
            detection, schedule="adaptive", **adaptive_kwargs
        )
        return measured, stores

    measured, stores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    serial, t_serial = measured[1]
    parallel, t_parallel = measured[WORKERS]
    replay, t_replay = measured["replay"]

    # Determinism: identical outcomes at both worker counts, and after
    # replay from the store.
    assert serial.executed_runs == parallel.executed_runs == total_runs
    for cold, warm in ((parallel, serial), (replay, serial)):
        for cell_result in cold.cells:
            assert cell_result.outcomes == warm.cell(cell_result.key).outcomes

    # Both stores hold the same 10k runs, byte-identical payloads.
    fingerprints = stores[1].fingerprints()
    assert len(fingerprints) == total_runs
    assert stores[WORKERS].fingerprints() == fingerprints
    sample = fingerprints[:: max(1, total_runs // PAYLOAD_SAMPLE)]
    assert _payload_index(stores[1], sample) == _payload_index(
        stores[WORKERS], sample
    )

    # Replay answered everything from the cache.
    assert measured["replay_counters"]["batch.cache_hits"] == total_runs

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    cpus = os.cpu_count() or 1
    speedup_asserted = cpus >= WORKERS and _pool_available()
    if speedup_asserted:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x speedup at {WORKERS} workers "
            f"on {cpus} cores, measured {speedup:.2f}x"
        )

    # Adaptive vs fixed: same converged intervals, >= 20% fewer runs.
    fixed, adaptive = measured["fixed"], measured["adaptive"]
    for cell_result in adaptive.cells:
        assert cell_result.converged, cell_result
        assert cell_result.ci_halfwidth <= ADAPTIVE_TARGET_CI
        assert cell_result.mean == fixed.cell(cell_result.key).mean
    assert adaptive.executed_runs <= (1.0 - SAVINGS_FLOOR) * fixed.executed_runs, (
        f"adaptive executed {adaptive.executed_runs} of "
        f"{fixed.executed_runs} fixed-grid runs"
    )

    for store in stores.values():
        store.close()

    record = {
        "bench": "sweep_scaling",
        "workload": (
            f"{total_runs}-run fixed sweep ({len(cells)} cells x "
            f"{RUNS_PER_CELL} seeds) through a {SHARDS}-shard store, "
            f"1 vs {WORKERS} workers; adaptive vs fixed on "
            f"{len(fixed.cells)} detection-rate cells"
        ),
        "runs": total_runs,
        "shards": SHARDS,
        "wall_s_workers1": round(t_serial, 3),
        f"wall_s_workers{WORKERS}": round(t_parallel, 3),
        "wall_s_replay": round(t_replay, 3),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": speedup_asserted,
        "cpus": cpus,
        "replay_cache_hits": measured["replay_counters"]["batch.cache_hits"],
        "adaptive_executed_runs": adaptive.executed_runs,
        "fixed_grid_runs": fixed.executed_runs,
        "savings_fraction": round(adaptive.savings_fraction, 3),
        "python": platform.python_version(),
    }
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        "sweep_scaling",
        render_table(
            [
                {
                    "configuration": "cold, workers=1",
                    "runs": total_runs,
                    "wall_s": round(t_serial, 2),
                    "runs_per_s": round(total_runs / t_serial, 1),
                },
                {
                    "configuration": f"cold, workers={WORKERS}",
                    "runs": total_runs,
                    "wall_s": round(t_parallel, 2),
                    "runs_per_s": round(total_runs / t_parallel, 1),
                },
                {
                    "configuration": "warm replay, workers=1",
                    "runs": total_runs,
                    "wall_s": round(t_replay, 2),
                    "runs_per_s": round(total_runs / t_replay, 1),
                },
                {
                    "configuration": f"speedup ({cpus} cores)",
                    "runs": total_runs,
                    "wall_s": None,
                    "runs_per_s": round(speedup, 2),
                },
                {
                    "configuration": "adaptive vs fixed (detection)",
                    "runs": adaptive.executed_runs,
                    "wall_s": None,
                    "runs_per_s": f"saved {adaptive.savings_fraction:.0%}",
                },
            ],
            title=(
                f"Sharded sweep: {total_runs} runs over {SHARDS} shards, "
                "bit-identical across worker counts and replay"
            ),
        ),
    )
