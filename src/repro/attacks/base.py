"""Attack interface and activation windows.

The problem definition (paper §5.1) has the sensors under attack over a
finite interval ``[k1, kn]`` with ``k1 != 0``; :class:`AttackWindow`
models that interval and every :class:`Attack` combines a window with a
physical injection model that yields an
:class:`~repro.radar.sensor.AttackEffect` per active instant.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.radar.sensor import AttackEffect
from repro.types import AttackLabel

__all__ = ["AttackWindow", "Attack", "NoAttack"]


@dataclass(frozen=True)
class AttackWindow:
    """The half-open-ended interval ``[start, end]`` an attack is active on.

    ``end`` may be ``math.inf`` for an attack that never stops within
    the simulation horizon.
    """

    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError(f"attack start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise ValueError(
                f"attack end {self.end} precedes start {self.start}"
            )

    def contains(self, time: float) -> bool:
        """True when ``time`` falls inside the active window."""
        return self.start <= time <= self.end

    @property
    def duration(self) -> float:
        """Window length in seconds (may be ``inf``)."""
        return self.end - self.start


class Attack(ABC):
    """A sensor attack: an activation window plus a physical injection.

    Subclasses implement :meth:`_effect` describing what enters the radar
    front end while the attack is active; the scene geometry is provided
    because physically realistic injections depend on it (jammer power
    falls with distance, the counterfeit mimics the true echo).
    """

    def __init__(self, window: AttackWindow):
        self.window = window

    @property
    @abstractmethod
    def label(self) -> AttackLabel:
        """Ground-truth label for metrics."""

    @abstractmethod
    def _effect(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float = 0.0,
    ) -> AttackEffect:
        """The injection while active (``time`` guaranteed in-window)."""

    def effect_at(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float = 0.0,
    ) -> Optional[AttackEffect]:
        """The injection at ``time``, or None when the attack is dormant.

        The true scene (distance, relative velocity) is provided because
        physically realistic injections depend on it — jammer power
        falls with distance, counterfeits mimic or offset the echo.
        """
        if not self.window.contains(time):
            return None
        return self._effect(time, true_distance, true_relative_velocity)

    def is_active(self, time: float) -> bool:
        """True while the attack is injecting energy."""
        return self.window.contains(time)


class NoAttack(Attack):
    """The benign scenario, expressed as an attack that never activates.

    Lets simulation code treat "no attack" uniformly.
    """

    def __init__(self):
        super().__init__(AttackWindow(start=0.0, end=0.0))

    @property
    def label(self) -> AttackLabel:
        return AttackLabel.NONE

    def _effect(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float = 0.0,
    ) -> AttackEffect:
        raise AssertionError("NoAttack never produces an effect")

    def effect_at(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float = 0.0,
    ) -> Optional[AttackEffect]:
        return None

    def is_active(self, time: float) -> bool:
        return False
