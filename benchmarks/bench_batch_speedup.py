"""Extension bench — throughput of the parallel batch-execution engine.

Times the same 16-seed Monte-Carlo sweep (Figure 2a DoS, defended)
serially and over a 4-worker process pool, asserting the engine's core
contract: parallel results are *bit-identical* to serial, and on a
machine with >= 4 usable cores the sweep completes >= 2x faster.

On smaller containers the determinism check still runs and the
measured timings are emitted, but the speedup floor is not asserted
(there is nothing to parallelize onto).
"""

import os
import time

from conftest import emit
from repro import fig2_scenario
from repro.analysis import render_table
from repro.simulation import RunSpec, execute_batch, run_monte_carlo

SEEDS = tuple(range(16))
WORKERS = 4
SPEEDUP_FLOOR = 2.0


def _pool_available() -> bool:
    """Probe whether a process pool actually runs here (cheap runs)."""
    probe = execute_batch(
        [RunSpec(fig2_scenario("dos", horizon=10.0)) for _ in range(2)],
        workers=2,
    )
    return probe.parallel


def bench_batch_speedup(benchmark):
    scenario = fig2_scenario("dos")

    def timed(workers):
        start = time.perf_counter()
        summary = run_monte_carlo(
            scenario, SEEDS, defended=True, workers=workers
        )
        return summary, time.perf_counter() - start

    def sweep():
        serial, t_serial = timed(1)
        parallel, t_parallel = timed(WORKERS)
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    # The engine's determinism contract, independent of core count.
    assert serial.outcomes == parallel.outcomes

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    cpus = os.cpu_count() or 1
    if cpus >= WORKERS and _pool_available():
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x speedup at {WORKERS} workers "
            f"on {cpus} cores, measured {speedup:.2f}x"
        )

    emit(
        "batch_speedup",
        render_table(
            [
                {
                    "configuration": f"workers={w}",
                    "runs": len(SEEDS),
                    "wall_s": round(t, 3),
                    "runs_per_s": round(len(SEEDS) / t, 1) if t > 0 else None,
                }
                for w, t in ((1, t_serial), (WORKERS, t_parallel))
            ]
            + [
                {
                    "configuration": f"speedup ({cpus} cores)",
                    "runs": len(SEEDS),
                    "wall_s": None,
                    "runs_per_s": round(speedup, 2),
                }
            ],
            title="Batch engine: 16-seed Monte-Carlo sweep, serial vs "
            f"{WORKERS}-worker pool (identical outcomes asserted)",
        ),
    )
