"""Denial-of-Service jamming attack (paper §4.1, Eqns 10-11; §6.2).

A self-screening jammer rides on the leader vehicle and transmits noise
with more in-band power than the radar's echo.  The injected power at
the victim receiver follows the one-way link budget of Eqn 10, so the
attack's success at a given separation is exactly the paper's Eqn 11
criterion ``P_r / P_jammer < 1``.

The paper's experiment uses ``P_J = 100 mW``, ``G_J = 10 dBi``,
``B_J = 155 MHz``, ``L_J = 0.10 dB`` and starts the attack at
``k = 182 s``.
"""

from __future__ import annotations

from typing import Optional

from repro.radar.link_budget import JammerParameters, jammer_received_power
from repro.radar.params import FMCWParameters
from repro.radar.sensor import AttackEffect
from repro.attacks.base import Attack, AttackWindow
from repro.types import AttackLabel

__all__ = ["DoSJammingAttack"]


class DoSJammingAttack(Attack):
    """Jam the victim radar with in-band noise while the window is active.

    Parameters
    ----------
    window:
        Activation interval (paper: ``[182, 300]`` seconds).
    jammer:
        Jammer link-budget parameters; defaults to the paper's §6.2
        values.
    radar_params:
        The victim radar's parameters, needed to evaluate Eqn 10 (shared
        wavelength/gain terms).  Defaults to the Bosch LRR2 preset.
    minimum_distance:
        Floor applied to the separation when evaluating the one-way
        link budget, so a vanishing gap cannot produce unbounded power.
    """

    def __init__(
        self,
        window: AttackWindow,
        jammer: Optional[JammerParameters] = None,
        radar_params: Optional[FMCWParameters] = None,
        minimum_distance: float = 1.0,
    ):
        super().__init__(window)
        if minimum_distance <= 0.0:
            raise ValueError(
                f"minimum_distance must be positive, got {minimum_distance}"
            )
        self.jammer = jammer if jammer is not None else JammerParameters()
        self.radar_params = radar_params if radar_params is not None else FMCWParameters()
        self.minimum_distance = minimum_distance

    @property
    def label(self) -> AttackLabel:
        return AttackLabel.DOS

    def _effect(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float = 0.0,
    ) -> AttackEffect:
        distance = max(self.minimum_distance, true_distance)
        power = jammer_received_power(self.radar_params, self.jammer, distance)
        return AttackEffect(jammer_noise_power=power)
