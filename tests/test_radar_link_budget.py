"""Radar range equation and jammer link budget — paper Eqns 9-11."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.radar import (
    FMCWParameters,
    JammerParameters,
    jamming_power_ratio,
    jamming_succeeds,
    received_power,
)
from repro.radar.link_budget import (
    beat_snr,
    burn_through_range,
    jammer_received_power,
    thermal_noise_power,
)

PARAMS = FMCWParameters()
JAMMER = JammerParameters()


class TestReceivedPower:
    def test_inverse_fourth_power_law(self):
        p50 = received_power(PARAMS, 50.0)
        p100 = received_power(PARAMS, 100.0)
        assert p50 / p100 == pytest.approx(16.0)

    def test_magnitude_at_100m(self):
        # Pt G² λ² σ / ((4π)³ d⁴ L) with the paper's numbers ≈ 3e-12 W.
        assert received_power(PARAMS, 100.0) == pytest.approx(2.97e-12, rel=0.05)

    def test_rcs_scales_linearly(self):
        assert received_power(PARAMS, 100.0, rcs=20.0) == pytest.approx(
            2.0 * received_power(PARAMS, 100.0, rcs=10.0)
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            received_power(PARAMS, 0.0)
        with pytest.raises(ValueError):
            received_power(PARAMS, 10.0, rcs=-1.0)


class TestJammerPower:
    def test_inverse_square_law(self):
        p50 = jammer_received_power(PARAMS, JAMMER, 50.0)
        p100 = jammer_received_power(PARAMS, JAMMER, 100.0)
        assert p50 / p100 == pytest.approx(4.0)

    def test_jammer_dominates_at_paper_distances(self):
        # With the §6.2 jammer the echo is swamped throughout the
        # radar's operating envelope.
        for d in (10.0, 50.0, 100.0, 200.0):
            assert jamming_succeeds(PARAMS, JAMMER, d)

    def test_band_fraction_caps_at_one(self):
        narrow = JammerParameters(bandwidth=50e6)  # narrower than radar band
        wide = JammerParameters(bandwidth=155e6)
        assert jammer_received_power(PARAMS, narrow, 100.0) >= jammer_received_power(
            PARAMS, wide, 100.0
        )

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            jammer_received_power(PARAMS, JAMMER, 0.0)


class TestEqn11Ratio:
    @given(st.floats(min_value=1.0, max_value=500.0))
    def test_ratio_scales_inverse_square(self, distance):
        base = jamming_power_ratio(PARAMS, JAMMER, 1.0)
        ratio = jamming_power_ratio(PARAMS, JAMMER, distance)
        assert ratio == pytest.approx(base / distance**2, rel=1e-9)

    def test_weak_jammer_fails(self):
        weak = JammerParameters(peak_power=1e-12)
        assert not jamming_succeeds(PARAMS, weak, 100.0)

    def test_burn_through_range_is_the_crossover(self):
        weak = JammerParameters(peak_power=1e-9)
        d_bt = burn_through_range(PARAMS, weak)
        assert jamming_power_ratio(PARAMS, weak, d_bt) == pytest.approx(1.0, rel=1e-6)
        assert jamming_succeeds(PARAMS, weak, d_bt * 1.01)
        assert not jamming_succeeds(PARAMS, weak, d_bt * 0.99)


class TestNoiseAndSNR:
    def test_thermal_noise_positive_and_scales_with_band(self):
        n1 = thermal_noise_power(PARAMS, 1e6)
        n2 = thermal_noise_power(PARAMS, 2e6)
        assert n2 == pytest.approx(2.0 * n1)

    def test_default_band_is_sample_rate(self):
        assert thermal_noise_power(PARAMS) == pytest.approx(
            thermal_noise_power(PARAMS, PARAMS.sample_rate)
        )

    def test_rejects_bad_band(self):
        with pytest.raises(ValueError):
            thermal_noise_power(PARAMS, 0.0)

    def test_snr_is_usable_across_envelope(self):
        # The radar must see targets at its maximum specified range.
        snr_near = beat_snr(PARAMS, 10.0)
        snr_far = beat_snr(PARAMS, 200.0)
        assert snr_far > 10.0  # > 10 dB at max range
        assert snr_near > snr_far

    def test_snr_monotonically_decreasing(self):
        snrs = [beat_snr(PARAMS, d) for d in (5.0, 20.0, 80.0, 200.0)]
        assert all(a > b for a, b in zip(snrs, snrs[1:]))


class TestJammerParameters:
    def test_paper_defaults(self):
        assert JAMMER.peak_power == pytest.approx(0.1)
        assert JAMMER.antenna_gain_db == 10.0
        assert JAMMER.bandwidth == 155e6
        assert JAMMER.loss_db == pytest.approx(0.10)

    def test_gain_linear(self):
        assert JAMMER.antenna_gain == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(Exception):
            JammerParameters(peak_power=0.0)
        with pytest.raises(Exception):
            JammerParameters(bandwidth=-1.0)
        with pytest.raises(Exception):
            JammerParameters(loss_db=-0.1)
