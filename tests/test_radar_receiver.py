"""Radar receiver chain (repro.radar.receiver)."""

import numpy as np
import pytest

from repro.radar import FMCWParameters, RadarReceiver, beat_frequencies
from repro.radar.link_budget import received_power
from repro.radar.signal_synth import complex_awgn, synthesize_beat_signal

PARAMS = FMCWParameters()


def synth_echo(distance, velocity, seed=0, extra_noise=0.0):
    rng = np.random.default_rng(seed)
    f_up, f_down = beat_frequencies(PARAMS, distance, velocity)
    power = received_power(PARAMS, distance)
    n = PARAMS.samples_per_segment
    noise = PARAMS.noise_floor + extra_noise
    up = synthesize_beat_signal(
        f_up, power, n, PARAMS.sample_rate, rng=rng, noise_power=noise
    )
    down = synthesize_beat_signal(
        f_down, power, n, PARAMS.sample_rate, rng=rng, noise_power=noise
    )
    return up, down


class TestPresenceDetection:
    def test_noise_only_reports_absent(self):
        rng = np.random.default_rng(0)
        n = PARAMS.samples_per_segment
        up = complex_awgn(n, PARAMS.noise_floor, rng)
        down = complex_awgn(n, PARAMS.noise_floor, rng)
        out = RadarReceiver(PARAMS).process(up, down)
        assert not out.present
        assert out.distance == 0.0
        assert out.relative_velocity == 0.0

    def test_echo_reports_present(self):
        out = RadarReceiver(PARAMS).process(*synth_echo(100.0, -1.0))
        assert out.present

    def test_far_target_still_detected(self):
        # Max range target must clear the presence threshold.
        out = RadarReceiver(PARAMS).process(*synth_echo(200.0, 0.0))
        assert out.present

    def test_threshold_factor_validation(self):
        with pytest.raises(ValueError):
            RadarReceiver(PARAMS, detection_threshold_factor=0.5)


class TestMeasurementAccuracy:
    @pytest.mark.parametrize(
        "distance,velocity",
        [(10.0, 0.0), (50.0, -5.0), (100.0, -0.9), (150.0, 10.0), (35.0, -2.0)],
    )
    def test_distance_and_velocity(self, distance, velocity):
        out = RadarReceiver(PARAMS).process(*synth_echo(distance, velocity, seed=42))
        assert out.present
        assert out.distance == pytest.approx(distance, abs=0.5)
        assert out.relative_velocity == pytest.approx(velocity, abs=0.3)

    def test_beat_frequencies_reported(self):
        out = RadarReceiver(PARAMS).process(*synth_echo(80.0, -3.0, seed=1))
        f_up, f_down = beat_frequencies(PARAMS, 80.0, -3.0)
        assert out.beat_freq_up == pytest.approx(f_up, abs=100.0)
        assert out.beat_freq_down == pytest.approx(f_down, abs=100.0)

    def test_accuracy_across_seeds(self):
        errors = []
        for seed in range(10):
            out = RadarReceiver(PARAMS).process(*synth_echo(60.0, -1.5, seed=seed))
            errors.append(abs(out.distance - 60.0))
        assert max(errors) < 0.5


class TestJammedReceiver:
    def test_strong_jamming_corrupts_measurement(self):
        # Jamming power 30 dB above the echo: the extracted frequencies
        # are noise-driven and the distance is far from the truth more
        # often than not; at minimum, presence is still declared.
        echo_power = received_power(PARAMS, 100.0)
        out = RadarReceiver(PARAMS).process(
            *synth_echo(100.0, -1.0, seed=7, extra_noise=1000.0 * echo_power)
        )
        assert out.present
        assert out.power > 100.0 * PARAMS.noise_floor
