#!/usr/bin/env python
"""Future-work extension: nonlinear lateral dynamics + lane keeping.

The paper's conclusion announces extending the case study "to include a
non-linear system model with lateral dynamics".  This example runs the
kinematic bicycle model with the lane-keeping controller (LKC — named
in the paper's introduction next to ACC) through three scenarios:

1. recovery from an initial lane offset on a straight road,
2. tracking a constant-curvature highway bend,
3. a slalom centerline while the vehicle decelerates with the paper's
   leader profile (-0.1082 m/s²).
"""

from repro import (
    ArcLane,
    LaneKeepingController,
    LateralSimulation,
    LateralState,
    SinusoidalLane,
    StraightLane,
)
from repro.analysis import ascii_plot, render_table
from repro.units import mph_to_mps


def run_case(name, path, initial, duration=60.0, **kwargs):
    sim = LateralSimulation(path, **kwargs)
    result = sim.run(initial, duration=duration)
    return name, result


def main() -> None:
    start_speed = mph_to_mps(65.0)
    cases = [
        run_case(
            "straight, 1.5 m initial offset",
            StraightLane(),
            LateralState(x=0.0, y=1.5, heading=0.0, speed=start_speed),
        ),
        run_case(
            "highway bend (kappa = 1e-3 1/m)",
            ArcLane(curvature=1e-3),
            LateralState(x=0.0, y=0.0, heading=0.0, speed=start_speed),
        ),
        run_case(
            "slalom while decelerating at -0.1082 m/s^2",
            SinusoidalLane(amplitude=1.5, wavelength=500.0),
            LateralState(x=0.0, y=0.0, heading=0.0, speed=start_speed),
            duration=120.0,
            speed_profile=lambda t: -0.1082,
        ),
    ]

    rows = []
    for name, result in cases:
        rows.append(
            {
                "scenario": name,
                "max_offset_m": round(result.max_offset(), 3),
                "steady_offset_m": round(result.max_offset(after=30.0), 3),
                "peak_steer_rad": round(max(abs(s) for s in result.steering), 3),
                "final_speed_mps": round(result.states[-1].speed, 1),
            }
        )
    print(render_table(rows, title="Lane keeping with the kinematic bicycle model"))
    print()

    name, result = cases[0]
    print(
        ascii_plot(
            {"lateral offset": (result.times, result.offsets)},
            title=f"Offset convergence: {name}",
            y_label="m",
            width=90,
            height=14,
        )
    )


if __name__ == "__main__":
    main()
