"""Algorithm 2 end-to-end: detection + safe-measurement substitution.

:class:`SafeMeasurementPipeline` sits between the radar receiver and the
ACC controller (the "Detection, Estimation Method" block of Figure 1).
For every raw measurement it decides what the controller should see:

* **trusted sample** (no alarm, not a challenge instant) — pass the raw
  measurement through and use it to train the RLS estimator;
* **challenge instant, no alarm** — the radar deliberately produced a
  zero output; the controller receives the estimator's forecast (or the
  last trusted value before the estimator is trained) rather than a
  bogus zero.  The clean challenge also *authenticates* the samples
  ingested since the previous challenge, so the estimator state is
  snapshotted here;
* **alarm raised** — the corrupted stream is discarded and the RLS
  forecast is substituted until a clean challenge response clears the
  alarm (paper §5.3: "during the duration of attack, we compute the
  control input with the estimated values").  On the raising edge the
  estimator first rolls back to the last authenticated snapshot,
  because samples between the last clean challenge and the detection
  instant may already be corrupted (e.g. the paper's delay attack
  starts at k = 180 but is only detectable at the k = 182 challenge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.detector import CRADetector
from repro.core.predictor import MeasurementEstimator, RadarChannelEstimator
from repro.exceptions import EstimatorNotTrainedError
from repro.types import DetectionEvent, RadarMeasurement

__all__ = ["SafeMeasurement", "SafeMeasurementPipeline"]


@dataclass(frozen=True)
class SafeMeasurement:
    """What the pipeline hands to the controller for one instant.

    Attributes
    ----------
    time:
        Sample instant, seconds.
    distance, relative_velocity:
        The safe values the controller should act on.
    estimated:
        True when the values came from the estimator rather than the
        sensor.
    attack_active:
        Alarm state after processing this sample.
    raw:
        The underlying (possibly corrupted) sensor measurement.
    """

    time: float
    distance: float
    relative_velocity: float
    estimated: bool
    attack_active: bool
    raw: RadarMeasurement


class SafeMeasurementPipeline:
    """The complete Algorithm 2 defense.

    Parameters
    ----------
    detector:
        CRA detector (must share the schedule the radar modulator uses).
    estimator:
        The measurement estimator; defaults to the per-channel RLS
        forecaster.  Pass a
        :class:`~repro.core.dead_reckoning.DeadReckoningEstimator` for
        drift-free long attacks (needs the trusted follower speed).
    rollback_on_detection:
        Discard unauthenticated samples by rolling the estimator back to
        the last clean-challenge snapshot when an alarm is raised.

    Notes
    -----
    Before the estimator has seen its minimum number of trusted samples,
    gaps (challenge instants, or an improbably early attack) are bridged
    by holding the last trusted measurement.
    """

    def __init__(
        self,
        detector: CRADetector,
        estimator: Optional[MeasurementEstimator] = None,
        rollback_on_detection: bool = True,
    ):
        self.detector = detector
        self.estimator = estimator if estimator is not None else RadarChannelEstimator()
        self.rollback_on_detection = rollback_on_detection
        self._outputs: List[SafeMeasurement] = []
        self._raw: List[RadarMeasurement] = []
        self._last_trusted: Optional[RadarMeasurement] = None
        self._authenticated_state: Optional[object] = None

    # ------------------------------------------------------------------

    @property
    def outputs(self) -> List[SafeMeasurement]:
        """All pipeline outputs so far (the paper's ``list_ŷ`` + passthroughs)."""
        return list(self._outputs)

    @property
    def raw_measurements(self) -> List[RadarMeasurement]:
        """All raw sensor measurements so far (the paper's ``list_y'``)."""
        return list(self._raw)

    @property
    def estimated_outputs(self) -> List[SafeMeasurement]:
        """Only the outputs the estimator produced (``list_ŷ``)."""
        return [o for o in self._outputs if o.estimated]

    @property
    def detection_events(self) -> List[DetectionEvent]:
        """Challenge verdicts recorded by the detector."""
        return self.detector.events

    @property
    def attack_active(self) -> bool:
        """Current alarm state."""
        return self.detector.attack_active

    # ------------------------------------------------------------------

    def _estimate(
        self, time: float, follower_speed: Optional[float]
    ) -> Tuple[float, float]:
        """Forecast both channels, falling back to hold-last-trusted."""
        if self.estimator.trained:
            try:
                return self.estimator.forecast(time, follower_speed)
            except EstimatorNotTrainedError:  # pragma: no cover - guarded above
                pass
        if self._last_trusted is not None:
            return (
                self._last_trusted.distance,
                self._last_trusted.relative_velocity,
            )
        return 0.0, 0.0

    def process(
        self,
        measurement: RadarMeasurement,
        follower_speed: Optional[float] = None,
    ) -> SafeMeasurement:
        """Run one raw measurement through Algorithm 2.

        ``follower_speed`` is the trusted ego speed; required when the
        estimator dead-reckons, ignored otherwise.
        """
        self._raw.append(measurement)
        was_active = self.detector.attack_active
        event = self.detector.process(measurement)
        is_challenge = event is not None
        alarm = self.detector.attack_active

        if is_challenge and alarm and not was_active and self.rollback_on_detection:
            # Raising edge: everything since the last clean challenge is
            # unauthenticated — roll the estimator back.
            if self._authenticated_state is not None:
                self.estimator.restore(self._authenticated_state)

        missed_detection = not is_challenge and measurement.is_zero_output(
            self.detector.zero_tolerance
        )
        if alarm or is_challenge or missed_detection:
            # The stream is corrupted, the radar deliberately produced a
            # zero output (challenge), or the receiver genuinely missed
            # the target this instant — substitute the estimate rather
            # than feeding a bogus zero to the estimator and controller.
            distance, velocity = self._estimate(measurement.time, follower_speed)
            estimated = True
        else:
            distance = measurement.distance
            velocity = measurement.relative_velocity
            estimated = False
            self._last_trusted = measurement
            self.estimator.observe(measurement, follower_speed)

        if is_challenge and not alarm:
            # Clean challenge response: the samples since the previous
            # challenge are now authenticated — snapshot the estimator.
            self._authenticated_state = self.estimator.snapshot()

        output = SafeMeasurement(
            time=measurement.time,
            distance=distance,
            relative_velocity=velocity,
            estimated=estimated,
            attack_active=alarm,
            raw=measurement,
        )
        self._outputs.append(output)
        return output
