"""Lower-level ACC controller: pedal/brake actuation + Eqn 14 tracking.

The lower level "determines the acceleration of pedal (a_pedal) and
brake pressure (P_brake) of the follower vehicle to ensure the desired
acceleration a_des is tracked by the actual acceleration a_F" (§6.1).
The paper compensates plant nonlinearities with inverse longitudinal
dynamics so the closed loop reduces to the first-order lag of Eqn 14;
we therefore model actuation as a static split around the coast
deceleration (what the vehicle does with neither pedal) followed by the
lag tracked in :class:`FirstOrderLongitudinalDynamics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vehicle.longitudinal import FirstOrderLongitudinalDynamics
from repro.vehicle.params import ACCParameters

__all__ = ["ActuatorCommand", "LowerLevelController"]


@dataclass(frozen=True)
class ActuatorCommand:
    """The internal actuation state of the ACC (Figure 1's a_pedal, P_brake).

    Attributes
    ----------
    pedal_acceleration:
        Acceleration demanded from the powertrain, m/s² (>= 0).
    brake_pressure:
        Brake pressure demanded from the hydraulics, bar (>= 0).
    commanded_acceleration:
        The saturated acceleration command the split corresponds to.
    """

    pedal_acceleration: float
    brake_pressure: float
    commanded_acceleration: float


class LowerLevelController:
    """Splits ``a_des`` into pedal/brake and tracks it through the lag."""

    def __init__(self, params: ACCParameters, initial_acceleration: float = 0.0):
        self.params = params
        self.dynamics = FirstOrderLongitudinalDynamics(params, initial_acceleration)

    @property
    def actual_acceleration(self) -> float:
        """The plant's current acceleration ``a_F``."""
        return self.dynamics.acceleration

    def actuation_split(self, desired_acceleration: float) -> ActuatorCommand:
        """Compute the pedal/brake split for a desired acceleration.

        Demands above the coast deceleration are met by the powertrain;
        demands below it require braking, with pressure proportional to
        the deceleration deficit (the inverse-dynamics map reduced to a
        constant gain).
        """
        params = self.params
        command = self.dynamics.clamp_command(desired_acceleration)
        surplus = command - params.coast_deceleration
        if surplus >= 0.0:
            return ActuatorCommand(
                pedal_acceleration=surplus,
                brake_pressure=0.0,
                commanded_acceleration=command,
            )
        return ActuatorCommand(
            pedal_acceleration=0.0,
            brake_pressure=params.brake_gain * (-surplus),
            commanded_acceleration=command,
        )

    def step(self, desired_acceleration: float) -> "tuple[float, ActuatorCommand]":
        """Advance the plant one sample toward ``a_des``.

        Returns the new actual acceleration and the actuation split
        used.
        """
        command = self.actuation_split(desired_acceleration)
        actual = self.dynamics.step(command.commanded_acceleration)
        return actual, command

    def reset(self, acceleration: float = 0.0) -> None:
        """Reset the tracked acceleration state."""
        self.dynamics.reset(acceleration)
