"""Extension bench — follower policy: hierarchical ACC vs plain IDM.

The paper builds its car-following model "by enhancing the
intelligent-driver model (IDM) with the hierarchical control model of
ACC" (§6.1).  This bench runs both follower policies through the
Figure 2a/2b scenarios and shows (a) the attack is lethal to either
undefended policy, (b) the CRA+RLS defense is policy-agnostic, and
(c) the ACC enhancement buys a larger engineered standstill margin
(d_0 + τ_h v) than IDM's dynamic desired gap.
"""

from conftest import emit
from repro import fig2_scenario, run
from repro.analysis import render_table


def _evaluate(policy: str, attack: str):
    scenario = fig2_scenario(attack, follower_policy=policy)
    clean = run(scenario, attack_enabled=False, defended=False)
    attacked = run(scenario, defended=False)
    defended = run(scenario, defended=True)
    return {
        "policy": policy,
        "attack": attack,
        "clean_min_gap_m": round(clean.min_gap(), 2),
        "attacked_collided": attacked.collided,
        "defended_min_gap_m": round(defended.min_gap(), 2),
        "defended_collided": defended.collided,
        "detection_s": defended.detection_times[0]
        if defended.detection_times
        else None,
    }


def bench_follower_policy(benchmark):
    def sweep():
        return [
            _evaluate(policy, attack)
            for policy in ("acc", "idm")
            for attack in ("dos", "delay")
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape claims: both policies are safe clean and lethal attacked;
    # the defense works identically for both (policy-agnostic pipeline);
    # the ACC's engineered standstill margin exceeds plain IDM's.
    assert all(row["detection_s"] == 182.0 for row in rows)
    assert all(not row["defended_collided"] for row in rows)
    assert all(row["attacked_collided"] for row in rows if row["attack"] == "dos")
    by = {(r["policy"], r["attack"]): r for r in rows}
    assert (
        by[("acc", "dos")]["clean_min_gap_m"] > by[("idm", "dos")]["clean_min_gap_m"]
    )

    emit(
        "follower_policy",
        render_table(
            rows,
            title="Follower policy: hierarchical ACC (the paper's "
            "enhancement) vs plain IDM, under both attacks",
        ),
    )
