"""Lower-loop longitudinal dynamics — the first-order lag of Eqn 14.

The closed loop of the lower-level controller with the vehicle plant is

    a_F(s) / a_des(s) = K_L / (T_L s + 1)

discretized exactly under zero-order hold (see
:func:`repro.lti.discretize.first_order_lag_discrete`).  Actuator limits
are applied to the commanded acceleration before the lag, matching the
paper's assumption that nonlinearities are compensated by inverse
longitudinal dynamics and only the lag remains.
"""

from __future__ import annotations

from repro.lti.discretize import first_order_lag_discrete
from repro.vehicle.params import ACCParameters

__all__ = ["FirstOrderLongitudinalDynamics"]


class FirstOrderLongitudinalDynamics:
    """Tracks a desired acceleration through the Eqn 14 first-order lag.

    Parameters
    ----------
    params:
        Supplies ``K_L``, ``T_L``, the sample period and the actuation
        limits.
    initial_acceleration:
        Acceleration state at k = 0, m/s².
    """

    def __init__(self, params: ACCParameters, initial_acceleration: float = 0.0):
        self.params = params
        self._alpha, self._beta = first_order_lag_discrete(
            gain=params.system_gain,
            time_constant=params.time_constant,
            dt=params.sample_period,
        )
        self._acceleration = float(initial_acceleration)

    @property
    def acceleration(self) -> float:
        """Current actual acceleration ``a_F``, m/s²."""
        return self._acceleration

    @property
    def lag_coefficients(self) -> "tuple[float, float]":
        """The discrete ``(alpha, beta)`` of the ZOH-discretized lag."""
        return self._alpha, self._beta

    def clamp_command(self, desired_acceleration: float) -> float:
        """Apply the actuator limits to a commanded acceleration."""
        return min(
            self.params.max_acceleration,
            max(self.params.min_acceleration, desired_acceleration),
        )

    def step(self, desired_acceleration: float) -> float:
        """Advance one sample period; returns the new actual acceleration.

        ``a_F[k+1] = α a_F[k] + β sat(a_des[k])``.
        """
        command = self.clamp_command(desired_acceleration)
        self._acceleration = self._alpha * self._acceleration + self._beta * command
        return self._acceleration

    def reset(self, acceleration: float = 0.0) -> None:
        """Reset the acceleration state."""
        self._acceleration = float(acceleration)
