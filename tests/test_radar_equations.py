"""Beat-frequency equations (repro.radar.equations) — paper Eqns 5-8."""

import pytest
from hypothesis import given, strategies as st

from repro.radar import FMCWParameters, beat_frequencies, invert_beat_frequencies
from repro.radar.equations import (
    distance_from_extra_delay,
    doppler_frequency,
    extra_delay_for_distance_offset,
    max_unambiguous_beat_frequency,
    range_frequency,
    round_trip_delay,
)
from repro.units import SPEED_OF_LIGHT

PARAMS = FMCWParameters()


class TestForwardModel:
    def test_round_trip_delay(self):
        assert round_trip_delay(150.0) == pytest.approx(2 * 150.0 / SPEED_OF_LIGHT)

    def test_round_trip_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            round_trip_delay(-1.0)

    def test_range_frequency_scale(self):
        # 2 * Bs / (c * Ts) ≈ 500.3 Hz per meter for the LRR2 waveform.
        per_meter = range_frequency(PARAMS, 1.0)
        assert per_meter == pytest.approx(500.3, abs=0.5)

    def test_doppler_frequency_scale(self):
        # 2 / λ ≈ 514 Hz per m/s.
        assert doppler_frequency(PARAMS, 1.0) == pytest.approx(2 / 3.89e-3, rel=1e-9)

    def test_stationary_target_has_equal_beats(self):
        f_up, f_down = beat_frequencies(PARAMS, 100.0, 0.0)
        assert f_up == pytest.approx(f_down)

    def test_closing_target_shifts_beats_apart(self):
        # Closing (negative relative velocity): up-beat rises, down-beat falls.
        f_up, f_down = beat_frequencies(PARAMS, 100.0, -5.0)
        f_up0, f_down0 = beat_frequencies(PARAMS, 100.0, 0.0)
        assert f_up > f_up0
        assert f_down < f_down0

    def test_paper_scenario_beats_below_nyquist(self):
        # All in-envelope geometries must be representable.
        f_up, f_down = beat_frequencies(PARAMS, 200.0, -30.0)
        nyquist = max_unambiguous_beat_frequency(PARAMS)
        assert abs(f_up) < nyquist
        assert abs(f_down) < nyquist


class TestInverseModel:
    @given(
        st.floats(min_value=2.0, max_value=200.0),
        st.floats(min_value=-40.0, max_value=40.0),
    )
    def test_round_trip_exact(self, distance, velocity):
        f_up, f_down = beat_frequencies(PARAMS, distance, velocity)
        d, dv = invert_beat_frequencies(PARAMS, f_up, f_down)
        assert d == pytest.approx(distance, rel=1e-9, abs=1e-9)
        assert dv == pytest.approx(velocity, rel=1e-9, abs=1e-9)

    def test_eqn7_constant(self):
        # d = c Ts (f+ + f-) / (4 Bs): check against a hand computation.
        f_sum = 4.0 * 150e6 * 100.0 / (SPEED_OF_LIGHT * 2e-3)  # f+ + f- at 100 m
        d, _ = invert_beat_frequencies(PARAMS, f_sum / 2, f_sum / 2)
        assert d == pytest.approx(100.0)

    def test_eqn8_constant(self):
        # Δv = λ (f- - f+) / 4.
        _, dv = invert_beat_frequencies(PARAMS, 0.0, 4.0 / 3.89e-3)
        assert dv == pytest.approx(1.0)


class TestDelayInjectionGeometry:
    def test_six_meters_maps_to_40ns(self):
        # The paper's 6 m spoof needs 2*6/c ≈ 40 ns of injected delay.
        delay = extra_delay_for_distance_offset(6.0)
        assert delay == pytest.approx(4.003e-8, rel=1e-3)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_round_trip(self, offset):
        delay = extra_delay_for_distance_offset(offset)
        assert distance_from_extra_delay(delay) == pytest.approx(offset, abs=1e-9)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            extra_delay_for_distance_offset(-1.0)
        with pytest.raises(ValueError):
            distance_from_extra_delay(-1e-9)
