"""Property-based tests on the pipeline, fusion, tracker and IDM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ChallengeSchedule, CRADetector, SafeMeasurementPipeline
from repro.core.fusion import MedianFusionDefense
from repro.radar.tracker import AlphaBetaTracker
from repro.types import RadarMeasurement, SensorStatus
from repro.vehicle import IntelligentDriverModel


class TestPipelineInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=5.0, max_value=200.0), min_size=30, max_size=80
        ),
        st.sets(st.integers(min_value=5, max_value=79), min_size=1, max_size=8),
    )
    def test_one_output_per_input_and_flag_consistency(self, distances, challenges):
        """Every input yields exactly one output; a sample is estimated
        iff it fell on a challenge instant or under an active alarm."""
        schedule = ChallengeSchedule.from_times(float(c) for c in challenges)
        pipeline = SafeMeasurementPipeline(CRADetector(schedule))
        for k, distance in enumerate(distances):
            time = float(k)
            if schedule.is_challenge(time):
                m = RadarMeasurement(
                    time=time, distance=0.0, relative_velocity=0.0,
                    status=SensorStatus.CHALLENGE,
                )
            else:
                m = RadarMeasurement(
                    time=time, distance=distance, relative_velocity=-1.0
                )
            out = pipeline.process(m)
            assert out.time == time
            expected_estimated = schedule.is_challenge(time) or out.attack_active
            assert out.estimated == expected_estimated
        assert len(pipeline.outputs) == len(distances)
        assert len(pipeline.raw_measurements) == len(distances)

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.integers(min_value=5, max_value=79), min_size=1, max_size=8))
    def test_clean_stream_never_alarms(self, challenges):
        schedule = ChallengeSchedule.from_times(float(c) for c in challenges)
        pipeline = SafeMeasurementPipeline(CRADetector(schedule))
        for k in range(80):
            time = float(k)
            if schedule.is_challenge(time):
                m = RadarMeasurement(
                    time=time, distance=0.0, relative_velocity=0.0,
                    status=SensorStatus.CHALLENGE,
                )
            else:
                m = RadarMeasurement(time=time, distance=50.0, relative_velocity=0.0)
            assert not pipeline.process(m).attack_active


class TestFusionProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=300.0), min_size=3, max_size=7
        )
    )
    def test_median_bounded_by_inputs(self, distances):
        fusion = MedianFusionDefense(n_sensors=len(distances))
        fused = fusion.fuse(
            [
                RadarMeasurement(time=0.0, distance=d, relative_velocity=0.0)
                for d in distances
            ]
        )
        assert min(distances) <= fused.distance <= max(distances)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=10.0, max_value=200.0),
        st.floats(min_value=10.0, max_value=500.0),
    )
    def test_single_outlier_never_wins_with_three_sensors(self, honest, outlier):
        fusion = MedianFusionDefense(n_sensors=3)
        fused = fusion.fuse(
            [
                RadarMeasurement(time=0.0, distance=outlier, relative_velocity=0.0),
                RadarMeasurement(time=0.0, distance=honest, relative_velocity=0.0),
                RadarMeasurement(time=0.0, distance=honest, relative_velocity=0.0),
            ]
        )
        assert fused.distance == pytest.approx(honest)


class TestTrackerProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=5.0, max_value=200.0), min_size=5, max_size=40
        )
    )
    def test_track_output_bounded_by_measurement_envelope(self, measurements):
        """The alpha-beta filter never extrapolates outside a widened
        envelope of what it has seen (no runaway states)."""
        tracker = AlphaBetaTracker(confirm_hits=1)
        lo, hi = min(measurements), max(measurements)
        margin = (hi - lo) + 50.0
        for d in measurements:
            out = tracker.update((d, 0.0))
            assert out is not None
            assert lo - margin <= out[0] <= hi + margin

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=5))
    def test_coast_count_determines_track_survival(self, misses):
        tracker = AlphaBetaTracker(confirm_hits=1, max_coast=3)
        tracker.update((100.0, -1.0))
        survived = True
        for _ in range(misses):
            survived = tracker.update(None) is not None
        assert survived == (misses <= 3)


class TestIDMProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=35.0),
        st.floats(min_value=1.0, max_value=150.0),
        st.floats(min_value=0.0, max_value=35.0),
    )
    def test_acceleration_bounded(self, speed, gap, lead_speed):
        idm = IntelligentDriverModel()
        a = idm.acceleration(speed, gap, lead_speed)
        assert a <= idm.params.max_acceleration + 1e-9
        assert np.isfinite(a)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=1.0, max_value=35.0),
        st.floats(min_value=5.0, max_value=150.0),
        st.floats(min_value=0.0, max_value=35.0),
    )
    def test_larger_gap_never_brakes_harder(self, speed, gap, lead_speed):
        idm = IntelligentDriverModel()
        closer = idm.acceleration(speed, gap, lead_speed)
        farther = idm.acceleration(speed, gap + 10.0, lead_speed)
        assert farther >= closer - 1e-9
