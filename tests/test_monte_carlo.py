"""Monte-Carlo evaluation harness (repro.simulation.monte_carlo)."""

import pytest

from repro import fig2_scenario
from repro.simulation import MonteCarloSummary, run_monte_carlo


@pytest.fixture(scope="module")
def defended_summary():
    return run_monte_carlo(fig2_scenario("dos"), seeds=range(4), defended=True)


class TestRunMonteCarlo:
    def test_one_outcome_per_seed(self, defended_summary):
        assert defended_summary.n_runs == 4
        assert [o.seed for o in defended_summary.outcomes] == [0, 1, 2, 3]

    def test_defended_runs_all_safe(self, defended_summary):
        assert defended_summary.collision_count == 0
        assert defended_summary.worst_min_gap > 0.0
        assert defended_summary.detection_rate == 1.0

    def test_detection_always_at_182(self, defended_summary):
        assert defended_summary.detection_times == [182.0] * 4
        for outcome in defended_summary.outcomes:
            assert outcome.detection_latency == 0.0

    def test_undefended_runs_all_collide(self):
        summary = run_monte_carlo(
            fig2_scenario("dos"), seeds=range(3), defended=False
        )
        assert summary.collision_count == 3
        assert summary.detection_rate == 0.0  # no detector without defense

    def test_attack_free_runs(self):
        summary = run_monte_carlo(
            fig2_scenario("dos"), seeds=range(2), attack_enabled=False
        )
        assert summary.collision_count == 0
        # The documented contract: detection rate is undefined (None)
        # when no attack ran, not 0.0.
        assert not summary.attacked
        assert summary.detection_rate is None
        assert summary.as_row("clean")["detection_rate"] is None

    def test_mean_and_worst_consistency(self, defended_summary):
        assert defended_summary.worst_min_gap <= defended_summary.mean_min_gap

    def test_as_row(self, defended_summary):
        row = defended_summary.as_row("defended fig2a")
        assert row["configuration"] == "defended fig2a"
        assert row["runs"] == 4
        assert row["collisions"] == 0
        assert row["detection_time_s"] == 182.0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_monte_carlo(fig2_scenario("dos"), seeds=[])


class TestLosslessSerialization:
    """Regression: the dict/JSON paths used to round values (min gaps
    to 2 decimals, detection times to 1), so JSON artifacts disagreed
    with in-process values.  Both paths are now exact."""

    def test_as_dict_matches_properties_exactly(self, defended_summary):
        d = defended_summary.as_dict()
        assert d["runs"] == defended_summary.n_runs
        assert d["attacked"] is defended_summary.attacked
        assert d["collisions"] == defended_summary.collision_count
        # Float equality on purpose: no rounding anywhere.
        assert d["worst_min_gap_m"] == defended_summary.worst_min_gap
        assert d["mean_min_gap_m"] == defended_summary.mean_min_gap
        assert d["detection_rate"] == defended_summary.detection_rate
        assert (
            d["median_detection_time_s"]
            == defended_summary.median_detection_time
        )

    def test_as_row_is_full_precision(self, defended_summary):
        row = defended_summary.as_row("x")
        assert row["worst_min_gap_m"] == defended_summary.worst_min_gap
        assert row["mean_min_gap_m"] == defended_summary.mean_min_gap
        assert (
            row["detection_time_s"] == defended_summary.median_detection_time
        )

    def test_json_round_trip_bit_exact(self, defended_summary):
        import json

        d = defended_summary.as_dict()
        assert json.loads(json.dumps(d)) == d

    def test_median_detection_time_none_without_detections(self):
        summary = run_monte_carlo(
            fig2_scenario("dos"), seeds=range(2), attack_enabled=False
        )
        assert summary.median_detection_time is None
        assert summary.as_dict()["median_detection_time_s"] is None
