"""Longitudinal vehicle state container."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["VehicleState"]


@dataclass(frozen=True)
class VehicleState:
    """Longitudinal state of one vehicle.

    Attributes
    ----------
    position:
        Distance along the lane, meters (grows in the driving direction).
    velocity:
        Longitudinal speed, m/s; never negative (vehicles do not reverse
        in the car-following scenario).
    acceleration:
        Current longitudinal acceleration, m/s².
    """

    position: float
    velocity: float
    acceleration: float = 0.0

    def __post_init__(self) -> None:
        if self.velocity < 0.0:
            raise ValueError(f"velocity must be >= 0, got {self.velocity}")

    def with_values(self, **kwargs) -> "VehicleState":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
