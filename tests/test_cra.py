"""Challenge-response scheduling (repro.core.cra)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ChallengeSchedule, PRBSGenerator


class TestPRBSGenerator:
    def test_deterministic_for_seed(self):
        a = PRBSGenerator(seed=0xBEEF)
        b = PRBSGenerator(seed=0xBEEF)
        assert [a.next_bit() for _ in range(64)] == [b.next_bit() for _ in range(64)]

    def test_different_seeds_differ(self):
        a = PRBSGenerator(seed=1)
        b = PRBSGenerator(seed=2)
        assert [a.next_bit() for _ in range(64)] != [b.next_bit() for _ in range(64)]

    def test_rejects_zero_state(self):
        with pytest.raises(ValueError):
            PRBSGenerator(seed=0)
        with pytest.raises(ValueError):
            PRBSGenerator(seed=1 << 16)  # 0 modulo 2^16

    def test_maximal_period(self):
        # The (16, 15, 13, 4) taps give the full 2^16 - 1 state cycle.
        gen = PRBSGenerator(seed=1)
        state0 = gen._state
        period = 0
        while True:
            gen.next_bit()
            period += 1
            if gen._state == state0:
                break
            assert period < (1 << 16)
        assert period == (1 << 16) - 1

    def test_bit_balance(self):
        gen = PRBSGenerator(seed=0xACE1)
        ones = sum(gen.next_bit() for _ in range(10000))
        assert 4700 < ones < 5300

    def test_next_word(self):
        gen = PRBSGenerator(seed=0xACE1)
        word = gen.next_word(16)
        assert 0 <= word < (1 << 16)
        with pytest.raises(ValueError):
            gen.next_word(0)

    def test_bernoulli_rate(self):
        gen = PRBSGenerator(seed=0xACE1)
        hits = sum(gen.bernoulli(0.1) for _ in range(5000))
        assert 350 < hits < 650

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            PRBSGenerator().bernoulli(1.5)

    def test_full_period_words_cover_every_nonzero_value(self):
        # Non-overlapping 16-bit draws over one full period: because
        # gcd(16, 2^16 - 1) = 1, the 2^16 - 1 draws land on every
        # distinct window offset, and an m-sequence's 16-bit windows
        # are exactly the nonzero 16-bit values, each once.  This is
        # the distribution the endpoint-corrected bernoulli() relies on.
        gen = PRBSGenerator(seed=1)
        period = (1 << 16) - 1
        words = {gen.next_word(16) for _ in range(period)}
        assert words == set(range(1, 1 << 16))

    def test_bernoulli_endpoints_exact_over_full_period(self):
        # Regression for the endpoint bias: the LFSR word is uniform on
        # [1, 2^16 - 1] (never 0), so the naive `word < p * 2^16`
        # threshold made any p < 2 / 2^16 unreachable.  Post-fix the
        # per-period fire count is exactly floor(p * (2^16 - 1)):
        # p = 0 never fires, p = 1 always fires, and the smallest
        # representable rate p = 1 / (2^16 - 1) fires exactly once —
        # the case that could NEVER fire before the fix.
        period = (1 << 16) - 1
        never = PRBSGenerator(seed=1)
        always = PRBSGenerator(seed=1)
        tiny = PRBSGenerator(seed=1)
        half = PRBSGenerator(seed=1)
        counts = [0, 0, 0, 0]
        for _ in range(period):
            counts[0] += never.bernoulli(0.0)
            counts[1] += always.bernoulli(1.0)
            counts[2] += tiny.bernoulli(1.0 / period)
            counts[3] += half.bernoulli(0.5)
        assert counts[0] == 0
        assert counts[1] == period
        assert counts[2] == 1
        assert counts[3] == period // 2

    def test_bernoulli_short_draws_unchanged(self):
        # Sub-register draws can legitimately produce zero words and
        # keep the plain threshold; the empirical rate stays sane.
        gen = PRBSGenerator(seed=0xACE1)
        hits = sum(gen.bernoulli(0.25, resolution_bits=8) for _ in range(4000))
        assert 800 < hits < 1200


class TestChallengeScheduleExplicit:
    def test_paper_instants(self):
        schedule = ChallengeSchedule.from_times([15.0, 50.0, 175.0, 182.0])
        for t in (15.0, 50.0, 175.0, 182.0):
            assert schedule.is_challenge(t)
        assert not schedule.is_challenge(100.0)

    def test_contains_and_len(self):
        schedule = ChallengeSchedule.from_times([1.0, 2.0])
        assert 1.0 in schedule
        assert 3.0 not in schedule
        assert len(schedule) == 2

    def test_times_sorted(self):
        schedule = ChallengeSchedule.from_times([5.0, 1.0, 3.0])
        assert schedule.times == (1.0, 3.0, 5.0)

    def test_tolerance_matching(self):
        schedule = ChallengeSchedule.from_times([10.0])
        assert schedule.is_challenge(10.0 + 1e-12)
        assert not schedule.is_challenge(10.1)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            ChallengeSchedule.from_times([-1.0])

    def test_next_challenge_bound(self):
        # The structural detection-latency bound the paper achieves.
        schedule = ChallengeSchedule.from_times([15.0, 50.0, 175.0, 182.0])
        assert schedule.next_challenge_at_or_after(180.0) == 182.0
        assert schedule.next_challenge_at_or_after(182.0) == 182.0
        assert schedule.next_challenge_at_or_after(183.0) is None


class TestChallengeScheduleRandom:
    def test_rate_controls_density(self):
        sparse = ChallengeSchedule.random(horizon=1000.0, rate=0.02, seed=1)
        dense = ChallengeSchedule.random(horizon=1000.0, rate=0.2, seed=1)
        assert len(dense) > len(sparse) > 0

    def test_deterministic_for_seed(self):
        a = ChallengeSchedule.random(horizon=300.0, rate=0.05, seed=7)
        b = ChallengeSchedule.random(horizon=300.0, rate=0.05, seed=7)
        assert a.times == b.times

    def test_min_gap_respected(self):
        schedule = ChallengeSchedule.random(
            horizon=500.0, rate=0.5, seed=3, min_gap=5.0
        )
        times = schedule.times
        assert all(b - a >= 5.0 for a, b in zip(times, times[1:]))

    def test_exclude_start(self):
        schedule = ChallengeSchedule.random(
            horizon=300.0, rate=0.5, seed=3, exclude_start=20.0
        )
        assert all(t >= 20.0 for t in schedule.times)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChallengeSchedule.random(horizon=0.0, rate=0.1)
        with pytest.raises(ValueError):
            ChallengeSchedule.random(horizon=10.0, rate=0.1, sample_period=0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=65535))
    def test_property_all_times_within_horizon(self, seed):
        schedule = ChallengeSchedule.random(horizon=100.0, rate=0.1, seed=seed)
        assert all(0.0 <= t <= 100.0 for t in schedule.times)
