"""End-to-end FMCW radar sensor with CRA modulation and attack hooks.

:class:`FMCWRadarSensor` glues the substrate together: at each discrete
sample instant it takes the *true* scene (distance and relative velocity
of the leader), the CRA transmit decision (``m(k)``), and the currently
active attack's :class:`AttackEffect`, and produces the
:class:`~repro.types.RadarMeasurement` the control system receives.

Two fidelity modes exist (DESIGN.md §7):

``"signal"``
    Full chain — synthesize the dechirped up/down beat segments (echo,
    counterfeit, jamming noise, thermal noise) at link-budget powers,
    run the energy detector and root-MUSIC, invert Eqns 7-8.
``"equation"``
    Direct Eqns 5-8 with Gaussian measurement noise and the same attack
    semantics (jamming success decided by Eqn 11's power comparison,
    spurious frequencies drawn uniformly below Nyquist).  Two to three
    orders of magnitude faster; used for long parameter sweeps.

Both modes corrupt measurements identically in distribution, so the
defense pipeline behaves the same on either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import ConfigurationError
from repro.radar.equations import beat_frequencies, invert_beat_frequencies
from repro.radar.link_budget import received_power
from repro.radar.params import FMCWParameters
from repro.radar.receiver import RadarReceiver
from repro.radar.signal_synth import combine_components, complex_awgn, synthesize_beat_signal
from repro.types import RadarMeasurement, SensorStatus

__all__ = ["AttackEffect", "FMCWRadarSensor"]


@dataclass(frozen=True)
class AttackEffect:
    """What an active attack injects into the radar front end at one instant.

    Produced by the attack models in :mod:`repro.attacks`; consumed by
    the sensor.  A DoS attack sets ``jammer_noise_power``; a delay
    injection sets the spoof offsets and ``replace_echo`` (the
    counterfeit is transmitted with enough power to capture the
    receiver, per §4.1: "correct sensor measurements are suppressed with
    a stronger signal").

    Attributes
    ----------
    spoof_distance_offset:
        Extra apparent distance (m) created by the injected delay.
    spoof_velocity_offset:
        Extra apparent relative velocity (m/s) of the counterfeit.
    replace_echo:
        When True the counterfeit overrides the true echo (the attacker
        replays a stronger, similar-characteristics signal).
    jammer_noise_power:
        Jamming power, in watts, received inside the radar band (Eqn 10).
    counterfeit_power_gain:
        Counterfeit power relative to the true echo power (> 1 so the
        receiver locks onto the counterfeit).
    """

    spoof_distance_offset: float = 0.0
    spoof_velocity_offset: float = 0.0
    replace_echo: bool = False
    jammer_noise_power: float = 0.0
    counterfeit_power_gain: float = 4.0

    @property
    def is_jamming(self) -> bool:
        """True when this effect includes jamming noise."""
        return self.jammer_noise_power > 0.0

    @property
    def is_spoofing(self) -> bool:
        """True when this effect includes a counterfeit echo."""
        return self.replace_echo or self.spoof_distance_offset != 0.0 or (
            self.spoof_velocity_offset != 0.0
        )


class FMCWRadarSensor:
    """The follower vehicle's long-range radar (paper §4.1, §6).

    Parameters
    ----------
    params:
        Radar configuration; defaults to the Bosch LRR2 preset.
    fidelity:
        ``"signal"`` or ``"equation"`` (see module docstring).
    seed:
        Seed for all stochastic components (noise, phases, spurs).
    distance_noise_std, velocity_noise_std:
        Gaussian measurement noise used by the equation-fidelity path
        (the signal path derives its noise from the link budget).  The
        defaults match long-range automotive radar accuracy specs
        (~0.25 m range, ~0.12 m/s velocity).
    receiver:
        Optional pre-configured receiver; built from ``params`` if None.
    dropout_rate:
        Probability that a nominal (probe-sent, target-visible) instant
        produces a missed detection (zero output) anyway — fading,
        multipath, occlusion.  Failure-injection knob; 0 by default.
    """

    def __init__(
        self,
        params: Optional[FMCWParameters] = None,
        fidelity: str = "equation",
        seed: Optional[int] = None,
        distance_noise_std: float = 0.25,
        velocity_noise_std: float = 0.12,
        receiver: Optional[RadarReceiver] = None,
        dropout_rate: float = 0.0,
    ):
        if fidelity not in ("signal", "equation"):
            raise ConfigurationError(
                f"fidelity must be 'signal' or 'equation', got {fidelity!r}"
            )
        if distance_noise_std < 0.0 or velocity_noise_std < 0.0:
            raise ConfigurationError("noise standard deviations must be >= 0")
        if not 0.0 <= dropout_rate < 1.0:
            raise ConfigurationError(
                f"dropout_rate must be in [0, 1), got {dropout_rate}"
            )
        self.params = params if params is not None else FMCWParameters()
        self.fidelity = fidelity
        self.rng = np.random.default_rng(seed)
        self.distance_noise_std = distance_noise_std
        self.velocity_noise_std = velocity_noise_std
        self.dropout_rate = float(dropout_rate)
        self.receiver = receiver if receiver is not None else RadarReceiver(self.params)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def measure(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float,
        transmit: bool = True,
        effect: Optional[AttackEffect] = None,
    ) -> RadarMeasurement:
        """Produce the receiver's measurement for one sample instant.

        Parameters
        ----------
        time:
            Discrete sample time ``k`` in seconds (recorded on the
            measurement; not used by the physics).
        true_distance, true_relative_velocity:
            Ground-truth scene geometry.
        transmit:
            The CRA modulation value ``m(k)``: False at challenge
            instants, in which case no probe (and hence no true echo)
            exists — but attacker-injected energy still arrives.
        effect:
            The active attack's injection, or None.
        """
        tele = _telemetry.current()
        if tele is not None:
            tele.incr("radar.measurements")
            if not transmit:
                tele.incr("radar.challenges")
            if effect is not None:
                tele.incr("radar.attacked_instants")
        dropped = (
            transmit
            and self.dropout_rate > 0.0
            and (effect is None or not effect.is_jamming)
            and self.rng.random() < self.dropout_rate
        )
        if dropped:
            if tele is not None:
                tele.incr("radar.dropouts")
            # Missed detection: the echo faded below the receiver's
            # threshold this instant (attacker jamming energy, when
            # present, still reaches the receiver and is never dropped).
            return RadarMeasurement(
                time=time,
                distance=0.0,
                relative_velocity=0.0,
                received_power=self.params.noise_floor,
                status=SensorStatus.NOMINAL,
            )
        if self.fidelity == "signal":
            return self._measure_signal(
                time, true_distance, true_relative_velocity, transmit, effect
            )
        return self._measure_equation(
            time, true_distance, true_relative_velocity, transmit, effect
        )

    def target_in_envelope(self, distance: float) -> bool:
        """True when a target at ``distance`` is inside the operating range."""
        return self.params.min_range <= distance <= self.params.max_range

    # ------------------------------------------------------------------
    # signal-fidelity path
    # ------------------------------------------------------------------

    def _measure_signal(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float,
        transmit: bool,
        effect: Optional[AttackEffect],
    ) -> RadarMeasurement:
        params = self.params
        n = params.samples_per_segment
        fs = params.sample_rate
        status = SensorStatus.NOMINAL if transmit else SensorStatus.CHALLENGE

        up_parts = []
        down_parts = []

        target_visible = self.target_in_envelope(true_distance)
        echo_power = (
            received_power(params, true_distance) if target_visible else 0.0
        )
        echo_suppressed = effect is not None and effect.replace_echo

        if transmit and target_visible and not echo_suppressed:
            f_up, f_down = beat_frequencies(
                params, true_distance, true_relative_velocity
            )
            up_parts.append(
                synthesize_beat_signal(f_up, echo_power, n, fs, rng=self.rng)
            )
            down_parts.append(
                synthesize_beat_signal(f_down, echo_power, n, fs, rng=self.rng)
            )

        if effect is not None and effect.is_spoofing:
            # The counterfeit is a replay of earlier probes, so it arrives
            # whether or not the radar transmitted at this instant — this
            # is exactly what the CRA challenge exposes.
            spoof_distance = true_distance + effect.spoof_distance_offset
            spoof_velocity = true_relative_velocity + effect.spoof_velocity_offset
            reference_power = echo_power if echo_power > 0.0 else received_power(
                params, max(params.min_range, min(spoof_distance, params.max_range))
            )
            counterfeit_power = reference_power * effect.counterfeit_power_gain
            f_up, f_down = beat_frequencies(params, spoof_distance, spoof_velocity)
            up_parts.append(
                synthesize_beat_signal(f_up, counterfeit_power, n, fs, rng=self.rng)
            )
            down_parts.append(
                synthesize_beat_signal(f_down, counterfeit_power, n, fs, rng=self.rng)
            )

        jam_power = effect.jammer_noise_power if effect is not None else 0.0
        noise_power = params.noise_floor + jam_power
        up_parts.append(complex_awgn(n, noise_power, self.rng))
        down_parts.append(complex_awgn(n, noise_power, self.rng))

        up_signal = combine_components(up_parts)
        down_signal = combine_components(down_parts)
        output = self.receiver.process(up_signal, down_signal)
        return RadarMeasurement(
            time=time,
            distance=output.distance,
            relative_velocity=output.relative_velocity,
            beat_freq_up=output.beat_freq_up,
            beat_freq_down=output.beat_freq_down,
            received_power=output.power,
            status=status,
        )

    # ------------------------------------------------------------------
    # equation-fidelity path
    # ------------------------------------------------------------------

    def _spurious_measurement(self) -> "tuple[float, float, float, float]":
        """Jammer-noise-driven spurious reading (uniform beat spurs).

        Under successful jamming the subspace estimator locks onto noise
        peaks; the resulting beat frequencies are uniformly distributed
        below Nyquist, producing the large erratic distance/velocity
        readings of the paper's Figures 2a/3a.
        """
        nyquist = self.params.sample_rate / 2.0
        f_up = float(self.rng.uniform(0.0, 0.9 * nyquist))
        f_down = float(self.rng.uniform(0.0, 0.9 * nyquist))
        distance, velocity = invert_beat_frequencies(self.params, f_up, f_down)
        return distance, velocity, f_up, f_down

    def _measure_equation(
        self,
        time: float,
        true_distance: float,
        true_relative_velocity: float,
        transmit: bool,
        effect: Optional[AttackEffect],
    ) -> RadarMeasurement:
        params = self.params
        status = SensorStatus.NOMINAL if transmit else SensorStatus.CHALLENGE
        target_visible = self.target_in_envelope(true_distance)
        echo_power = received_power(params, true_distance) if target_visible else 0.0

        jam_power = effect.jammer_noise_power if effect is not None else 0.0
        jamming_wins = jam_power > 0.0 and (not transmit or jam_power > echo_power)
        spoofing = effect is not None and effect.is_spoofing

        if jamming_wins:
            distance, velocity, f_up, f_down = self._spurious_measurement()
            return RadarMeasurement(
                time=time,
                distance=distance,
                relative_velocity=velocity,
                beat_freq_up=f_up,
                beat_freq_down=f_down,
                received_power=jam_power,
                status=status,
            )

        if spoofing:
            # Counterfeit replay: present at challenge instants too.
            spoof_distance = true_distance + effect.spoof_distance_offset
            spoof_velocity = true_relative_velocity + effect.spoof_velocity_offset
            distance = spoof_distance + self.rng.normal(0.0, self.distance_noise_std)
            velocity = spoof_velocity + self.rng.normal(0.0, self.velocity_noise_std)
            f_up, f_down = beat_frequencies(params, spoof_distance, spoof_velocity)
            power = echo_power * (effect.counterfeit_power_gain if effect else 1.0)
            return RadarMeasurement(
                time=time,
                distance=distance,
                relative_velocity=velocity,
                beat_freq_up=f_up,
                beat_freq_down=f_down,
                received_power=power,
                status=status,
            )

        if not transmit or not target_visible:
            # Challenge instant with an honest environment, or no target:
            # the receiver hears only the thermal floor → zero output.
            return RadarMeasurement(
                time=time,
                distance=0.0,
                relative_velocity=0.0,
                beat_freq_up=0.0,
                beat_freq_down=0.0,
                received_power=params.noise_floor,
                status=status,
            )

        distance = true_distance + self.rng.normal(0.0, self.distance_noise_std)
        velocity = true_relative_velocity + self.rng.normal(0.0, self.velocity_noise_std)
        f_up, f_down = beat_frequencies(params, true_distance, true_relative_velocity)
        return RadarMeasurement(
            time=time,
            distance=distance,
            relative_velocity=velocity,
            beat_freq_up=f_up,
            beat_freq_down=f_down,
            received_power=echo_power,
            status=status,
        )
