"""Leader-motion RLS estimation with ego-speed dead reckoning.

The per-channel RLS forecaster (the paper's literal Algorithm 1 applied
to the distance and relative-velocity streams independently) runs open
loop during an attack: a constant level error ``ε`` in the distance
forecast maps through the CTH law into a constant follower-velocity
offset ``ε/τ_h`` and therefore an *unbounded linear drift* of the true
gap over a long attack.  The ablation bench quantifies this.

:class:`DeadReckoningEstimator` removes the drift by estimating the only
genuinely unknown quantity — the **leader's velocity** ``v_L = Δv +
v_F`` (the paper assumes ``v_F`` is measured by a trusted sensor) — with
the same Algorithm 1 RLS, and reconstructing the radar channels during
the attack by dead reckoning:

    Δv̂(k) = v̂_L(k) - v_F(k)            (trusted ego speed, live)
    d̂(k+1) = d̂(k) + Δv̂(k) · T          (gap integration)

Because ``v_F`` enters live at every step, the loop around the follower
stays closed: if the vehicle runs fast, ``Δv̂`` turns negative and the
estimated gap shrinks, braking the vehicle — the estimate error obeys
``ė = v̂_L - v_L`` and depends only on the leader-velocity forecast
quality, not on the follower's state.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from repro.core.predictor import ChannelPredictor, Forecaster, MeasurementEstimator
from repro.exceptions import EstimatorNotTrainedError
from repro.types import RadarMeasurement

__all__ = ["DeadReckoningEstimator"]


class DeadReckoningEstimator(MeasurementEstimator):
    """Leader-velocity RLS + trusted-ego-speed gap integration.

    Parameters
    ----------
    leader_velocity_predictor:
        Forecaster for ``v_L``; defaults to a linear-trend RLS channel
        (exact for the paper's constant-acceleration leader profiles).
    sample_period:
        Integration step for the gap dead reckoning, seconds.
    nonnegative_leader_velocity:
        Clamp the leader-velocity forecast at zero (vehicles do not
        reverse); keeps the estimated gap sane past leader standstill.
    margin_gain:
        Strength ``κ`` of the uncertainty-aware safety margin.  The gap
        estimate handed to the controller is reduced by
        ``κ · σ_v(t) · (t - t_trusted) / 2`` where ``σ_v`` is the RLS
        forecast standard deviation of the leader velocity — the
        first-order bound on the integrated gap error.  A noisy or
        short training window therefore automatically makes the defense
        more conservative.  Set to 0 to disable.
    """

    def __init__(
        self,
        leader_velocity_predictor: Optional[Forecaster] = None,
        sample_period: float = 1.0,
        nonnegative_leader_velocity: bool = True,
        margin_gain: float = 2.0,
    ):
        if sample_period <= 0.0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        if margin_gain < 0.0:
            raise ValueError(f"margin_gain must be >= 0, got {margin_gain}")
        self.leader_velocity_predictor = (
            leader_velocity_predictor
            if leader_velocity_predictor is not None
            else ChannelPredictor()
        )
        self.sample_period = float(sample_period)
        self.nonnegative_leader_velocity = nonnegative_leader_velocity
        self.margin_gain = float(margin_gain)
        self._anchor: Optional[Tuple[float, float]] = None
        self._last_trusted_time: Optional[float] = None
        # Quarantine log since the last snapshot: (time, ego speed,
        # measurement or None).  Replayed with validation on restore.
        self._quarantine: List[Tuple[float, float, Optional[RadarMeasurement]]] = []

    # ------------------------------------------------------------------

    @property
    def trained(self) -> bool:
        return self.leader_velocity_predictor.trained and self._anchor is not None

    def _leader_velocity(self, time: float) -> float:
        forecast = self.leader_velocity_predictor.forecast(time)
        if self.nonnegative_leader_velocity:
            return max(0.0, forecast)
        return forecast

    def observe(
        self, measurement: RadarMeasurement, follower_speed: Optional[float] = None
    ) -> None:
        """Ingest one trusted measurement plus the trusted ego speed."""
        if follower_speed is None:
            raise ValueError(
                "DeadReckoningEstimator requires the trusted follower speed"
            )
        leader_velocity = measurement.relative_velocity + follower_speed
        self.leader_velocity_predictor.observe(measurement.time, leader_velocity)
        self._anchor = (measurement.time, measurement.distance)
        self._last_trusted_time = measurement.time
        self._quarantine.append((measurement.time, follower_speed, measurement))

    def _roll_anchor(self, to_time: float, follower_speed: float) -> None:
        """Integrate the gap from the anchor to ``to_time``.

        Midpoint rule per step — exact for the linear leader-velocity
        trends the default predictor fits, and consistent with the
        trapezoidal position updates of the vehicle kinematics
        (Eqn 17's ``v T + a T²/2``).
        """
        assert self._anchor is not None
        anchor_time, gap = self._anchor
        tolerance = 1e-9
        while anchor_time + tolerance < to_time:
            step_time = min(anchor_time + self.sample_period, to_time)
            midpoint = 0.5 * (anchor_time + step_time)
            relative_velocity = self._leader_velocity(midpoint) - follower_speed
            gap += relative_velocity * (step_time - anchor_time)
            anchor_time = step_time
        self._anchor = (anchor_time, max(0.0, gap))

    def forecast(
        self, time: float, follower_speed: Optional[float] = None
    ) -> Tuple[float, float]:
        """Estimated ``(distance, relative_velocity)`` at ``time``."""
        if follower_speed is None:
            raise ValueError(
                "DeadReckoningEstimator requires the trusted follower speed"
            )
        if not self.trained:
            raise EstimatorNotTrainedError(
                "dead-reckoning estimator has no trained leader model yet"
            )
        self._quarantine.append((time, follower_speed, None))
        self._roll_anchor(time, follower_speed)
        relative_velocity = self._leader_velocity(time) - follower_speed
        return max(0.0, self._anchor[1] - self._safety_margin(time)), relative_velocity

    def _safety_margin(self, time: float) -> float:
        """Uncertainty-aware reduction of the reported gap.

        The dominant forecast error is the leader-velocity model error
        integrated over the horizon; its first-order magnitude is
        ``σ_v(t) (t - t_trusted) / 2`` (a linearly growing velocity
        error integrates to this).  Scaled by ``margin_gain``.
        """
        if self.margin_gain == 0.0 or self._last_trusted_time is None:
            return 0.0
        horizon = max(0.0, time - self._last_trusted_time)
        if horizon == 0.0:
            return 0.0
        predictor = self.leader_velocity_predictor
        if not isinstance(predictor, ChannelPredictor):
            return 0.0
        sigma = predictor.prediction_std(time)
        return self.margin_gain * sigma * horizon / 2.0

    # ------------------------------------------------------------------
    # snapshot / restore (rollback to the last authenticated state)
    # ------------------------------------------------------------------

    def snapshot(self) -> object:
        """Capture the estimator state; starts a fresh quarantine log."""
        state = (
            copy.deepcopy(self.leader_velocity_predictor),
            self._anchor,
            self._last_trusted_time,
        )
        self._quarantine = []
        return state

    def restore(self, snapshot: object) -> None:
        """Roll back to ``snapshot`` and replay the quarantined samples.

        Samples ingested after the snapshot are unauthenticated (the
        attack may already have been underway), so the leader model and
        the gap anchor revert.  The quarantined measurements are then
        replayed *with validation*: the anchor rolls forward on the
        model using the trusted ego speeds, and a quarantined
        measurement is re-accepted only when it agrees with the
        model-rolled expectation within :meth:`_replay_gate`.

        Spoofed samples (the +6 m delay offset, DoS spurs) fail the gate
        and are discarded; clean samples pass and re-synchronize both
        the anchor and the leader model — which matters when the leader
        changed regime shortly before the detection, where the reverted
        model alone would lag badly.  An attacker can at most drag the
        anchor by ~gate per quarantined sample, a bounded residual error
        the safety margin covers.
        """
        predictor, anchor, last_trusted = snapshot  # type: ignore[misc]
        self.leader_velocity_predictor = copy.deepcopy(predictor)
        self._anchor = anchor
        self._last_trusted_time = last_trusted
        if self._anchor is None:
            self._quarantine = []
            return
        anchor_time = self._anchor[0]
        for log_time, speed, measurement in self._quarantine:
            if log_time <= anchor_time or not self.trained:
                continue
            span = log_time - (
                self._last_trusted_time
                if self._last_trusted_time is not None
                else anchor_time
            )
            self._roll_anchor(log_time, speed)
            if measurement is None:
                continue
            innovation = measurement.distance - self._anchor[1]
            if abs(innovation) <= self._replay_gate(span):
                # Validated: re-accept the sample.
                leader_velocity = measurement.relative_velocity + speed
                self.leader_velocity_predictor.observe(
                    measurement.time, leader_velocity
                )
                self._anchor = (measurement.time, measurement.distance)
                self._last_trusted_time = measurement.time
        self._quarantine = []

    def _replay_gate(self, span: float) -> float:
        """Acceptance gate for quarantined-measurement validation, m.

        The model-rolled expectation accumulates bias of roughly one
        residual standard deviation of leader velocity per second, so
        the gate grows with the ``span`` since the last accepted sample.
        Wide enough to re-accept clean samples when the model is known
        to be mispredicting (large recent residuals), tight enough to
        reject the paper's +6 m spoof when the model is healthy.
        """
        predictor = self.leader_velocity_predictor
        residual = (
            predictor.residual_std
            if isinstance(predictor, ChannelPredictor)
            else 0.0
        )
        return max(3.0, 5.0 * residual * max(1.0, span))
