"""Secure state reconstruction under s-sparse sensor attacks.

The related work the paper builds on (Fawzi et al. [3], Chong et
al. [1]) poses state estimation under attack as a combinatorial
problem: at most ``s`` of the ``p`` sensors are corrupted, the rest are
honest, and the true initial state is the one consistent with *some*
subset of ``p - s`` sensors over an observation window.
:class:`SecureStateReconstruct` solves it by subset search — one
least-squares observer per sensor subset of size ``p - s``, keeping the
candidates whose residual is within tolerance:

    y_i[k] = C_i A^k x0 + C_i f[k]          (f = input contribution)

stacked over the window and the subset's sensors, solved for ``x0``.

The structural guarantee (checked through
:func:`repro.lti.observability.is_sparse_observable`): when ``(A, C)``
is **2s-sparse observable** and at most ``s`` sensors are attacked, the
honest subset's candidate is exact and every candidate consistent with
the data agrees with it — the reconstruction is unique.  When the
guarantee fails (e.g. the car-following radar's velocity channel alone
cannot observe the gap), :attr:`ReconstructionResult.guaranteed` is
False and ``unobservable_subsets`` names the sensor subsets whose
candidates are structurally ambiguous; callers must disambiguate with a
prior (see :mod:`repro.defense.estimator`).

Batched subset kernels
----------------------
Everything that depends only on the window's *dt-geometry* — the
transition products ``Φ(t_k, t_0)``, the per-subset stacked
observability maps, their ranks, pseudo-inverse solve operators and
end-state covariances — is built once per geometry and applied to the
measurements as a handful of batched ``(n_subsets, …)`` array
operations; no per-subset python loop touches LAPACK on the data path.
:class:`IncrementalWindowSolver` caches those geometry kernels across a
*sliding* window (keyed on the quantized dt-tuple, LRU-bounded), so a
uniformly-sampled window pays the geometry build exactly once and every
subsequent step is a pure data pass.  Appending a sample to a known
geometry extends the cached Φ products and stacked rows instead of
rebuilding them; evicting the oldest sample of a *uniform* window
leaves the dt-tuple unchanged (a cache hit), which is why the common
closed-loop case runs incrementally.  Results are bit-identical between
the cached and from-scratch paths: both funnel through the same kernel
construction and the same batched data pass.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lti.observability import is_sparse_observable

__all__ = [
    "SSProblem",
    "ReconstructionCandidate",
    "ReconstructionResult",
    "SecureStateReconstruct",
    "IncrementalWindowSolver",
    "TransitionCache",
]

#: Transition-cache / geometry keys quantize dt at this many decimals so
#: float jitter below physical relevance cannot grow the caches without
#: bound (satellite of PR 10; one nanosecond at the radar's 1 s period).
_DT_KEY_DECIMALS = 9


@dataclass(frozen=True)
class SSProblem:
    """One secure-state-reconstruction problem instance.

    Attributes
    ----------
    A, B, C:
        Discrete-time LTI model ``x[k+1] = A x[k] + B u[k]``,
        ``y[k] = C x[k]`` (+ sparse attack).  ``B`` may be None for an
        autonomous window.
    ys:
        Measurement window, shape ``(T, p)`` — row ``k`` holds every
        sensor's reading at step ``k``.
    us:
        Inputs applied *between* samples, shape ``(T - 1, m)``; ``u[k]``
        acts on the transition from ``ys[k]`` to ``ys[k+1]``.  None (or
        empty) means zero input.
    s:
        Assumed maximum number of attacked sensors.
    dts:
        Optional per-interval durations (length ``T - 1``) for windows
        whose samples are *not* uniformly spaced (e.g. trusted radar
        samples with challenge instants missing).  Requires a
        ``transition`` callable on :class:`SecureStateReconstruct`;
        without one, every interval uses the nominal ``A``/``B``.
    """

    A: np.ndarray
    B: Optional[np.ndarray]
    C: np.ndarray
    ys: np.ndarray
    us: Optional[np.ndarray] = None
    s: int = 1
    dts: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "A", np.atleast_2d(np.asarray(self.A, float)))
        object.__setattr__(self, "C", np.atleast_2d(np.asarray(self.C, float)))
        object.__setattr__(self, "ys", np.atleast_2d(np.asarray(self.ys, float)))
        if self.B is not None:
            B = np.asarray(self.B, float).reshape(self.A.shape[0], -1)
            object.__setattr__(self, "B", B)
        if self.us is not None:
            us = np.atleast_2d(np.asarray(self.us, float))
            object.__setattr__(self, "us", us)
        n = self.A.shape[0]
        if self.A.shape != (n, n):
            raise ConfigurationError(f"A must be square, got {self.A.shape}")
        if self.C.shape[1] != n:
            raise ConfigurationError(
                f"C must have {n} columns, got {self.C.shape}"
            )
        if self.ys.shape[1] != self.C.shape[0]:
            raise ConfigurationError(
                f"ys must have one column per sensor ({self.C.shape[0]}), "
                f"got shape {self.ys.shape}"
            )
        if self.ys.shape[0] < 2:
            raise ConfigurationError(
                f"the window needs at least 2 samples, got {self.ys.shape[0]}"
            )
        if self.s < 0:
            raise ConfigurationError(f"s must be >= 0, got {self.s}")
        if self.s >= self.C.shape[0]:
            raise ConfigurationError(
                f"s must leave at least one honest sensor "
                f"(s={self.s}, p={self.C.shape[0]})"
            )
        if self.us is not None and len(self.us) not in (0, len(self.ys) - 1):
            raise ConfigurationError(
                f"us must hold one input per transition "
                f"({len(self.ys) - 1}), got {len(self.us)}"
            )
        if self.us is not None and self.B is None:
            raise ConfigurationError("us given without a B matrix")
        if self.dts is not None:
            dts = np.asarray(self.dts, float).reshape(-1)
            object.__setattr__(self, "dts", dts)
            if len(dts) != len(self.ys) - 1:
                raise ConfigurationError(
                    f"dts must hold one duration per transition "
                    f"({len(self.ys) - 1}), got {len(dts)}"
                )
            if np.any(dts <= 0.0):
                raise ConfigurationError("dts must be strictly positive")

    @property
    def n(self) -> int:
        """State dimension."""
        return self.A.shape[0]

    @property
    def p(self) -> int:
        """Sensor count."""
        return self.C.shape[0]

    @property
    def io_length(self) -> int:
        """Window length ``T`` (number of measurement rows)."""
        return self.ys.shape[0]

    def input_contributions(self) -> np.ndarray:
        """State contribution of the inputs: ``f[k]`` with ``f[0] = 0``.

        ``x[k] = A^k x0 + f[k]`` where ``f[k+1] = A f[k] + B u[k]``
        (nominal uniform spacing; the solver recomputes this with the
        per-interval transition when one is configured).
        """
        T, n = self.io_length, self.n
        f = np.zeros((T, n))
        if self.B is None or self.us is None or len(self.us) == 0:
            return f
        for k in range(T - 1):
            f[k + 1] = self.A @ f[k] + self.B @ self.us[k]
        return f


@dataclass(frozen=True)
class ReconstructionCandidate:
    """One sensor subset's least-squares state hypothesis."""

    #: Sensors assumed honest.
    sensors: Tuple[int, ...]
    #: Complement — the sensors this hypothesis accuses.
    attacked: Tuple[int, ...]
    #: Initial state at the start of the window.
    x0: np.ndarray
    #: State propagated to the window's last sample instant.
    x_end: np.ndarray
    #: RMS measurement residual over the subset's window rows.
    residual: float
    #: Whether the subset's stacked observability map had full rank
    #: (rank-deficient subsets yield minimum-norm, non-unique x0).
    observable: bool
    #: Covariance of ``x_end`` under i.i.d. unit-variance measurement
    #: noise: ``Φ (MᵀM)⁻¹ Φᵀ``.  Scale by the noise variance to get the
    #: actual covariance; None for rank-deficient subsets.
    x_end_covariance: Optional[np.ndarray] = None


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of :meth:`SecureStateReconstruct.solve`.

    ``candidates`` holds every subset hypothesis sorted by residual;
    ``consistent`` only those whose residual passes the tolerance *and*
    whose subset is observable.  ``guaranteed`` reports the structural
    2s-sparse observability condition — when False the reconstruction
    may be ambiguous even with a perfect model, and
    ``unobservable_subsets`` lists the offending subsets.

    ``subsets_searched`` / ``subsets_pruned`` make the subset search
    observable: how many ``C(p, p - s)`` hypotheses the solver examined
    and how many it eliminated (residual gate or rank deficiency) —
    ``searched - pruned == len(consistent)``.
    """

    candidates: Tuple[ReconstructionCandidate, ...]
    consistent: Tuple[ReconstructionCandidate, ...]
    guaranteed: bool
    unobservable_subsets: Tuple[Tuple[int, ...], ...] = field(
        default_factory=tuple
    )
    #: Number of sensor-subset hypotheses examined by the search.
    subsets_searched: int = 0
    #: Hypotheses eliminated (inconsistent residual or rank-deficient).
    subsets_pruned: int = 0

    @property
    def best(self) -> Optional[ReconstructionCandidate]:
        """Lowest-residual consistent candidate (None when all rejected)."""
        return self.consistent[0] if self.consistent else None


# ----------------------------------------------------------------------
# transition memoization
# ----------------------------------------------------------------------


class TransitionCache:
    """Bounded LRU memo of a ``dt → (A_dt, B_dt)`` discretization.

    Keys quantize ``dt`` at :data:`_DT_KEY_DECIMALS` decimals so jittered
    sampling (float noise on nominally-identical intervals) cannot grow
    the cache without bound; matrices are built from the quantized value
    so equal keys always map to identical arrays.
    """

    def __init__(
        self,
        builder: Callable[[float], Tuple[np.ndarray, np.ndarray]],
        maxsize: int = 64,
    ):
        if maxsize < 1:
            raise ConfigurationError(
                f"transition cache maxsize must be >= 1, got {maxsize}"
            )
        self._builder = builder
        self._maxsize = int(maxsize)
        self._entries: Dict[float, Tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __call__(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        key = round(float(dt), _DT_KEY_DECIMALS)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            # Refresh recency (python dicts preserve insertion order).
            self._entries[key] = self._entries.pop(key)
            return cached
        self.misses += 1
        entry = self._builder(key)
        self._entries[key] = entry
        if len(self._entries) > self._maxsize:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        return entry


# ----------------------------------------------------------------------
# geometry kernels (everything that depends only on the dt-tuple)
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=256)
def _subset_tuples(p: int, s: int) -> Tuple[Tuple[int, ...], ...]:
    """Every sensor subset of size ``p - s``, with its complement."""
    return tuple(itertools.combinations(range(p), p - s))


@functools.lru_cache(maxsize=256)
def _attacked_tuples(p: int, s: int) -> Tuple[Tuple[int, ...], ...]:
    return tuple(
        tuple(i for i in range(p) if i not in set(sub))
        for sub in _subset_tuples(p, s)
    )


@functools.lru_cache(maxsize=256)
def _subset_row_indices(p: int, s: int, T: int) -> np.ndarray:
    """Row-selection masks into the ``(T * p,)`` stacked full system.

    Row ``k * p + i`` of the full stack is sensor ``i`` at step ``k``;
    each subset keeps its sensors at every step, k-major (the exact row
    order of the per-subset stacked observer).  Shape
    ``(n_subsets, T * (p - s))`` — treat as read-only.
    """
    rows = [
        [k * p + i for k in range(T) for i in sub]
        for sub in _subset_tuples(p, s)
    ]
    return np.asarray(rows, dtype=np.intp)


class _SubsetKernel:
    """Per-sparsity batched solve structures for one window geometry.

    Holds, for every subset of size ``p - s``: the stacked observability
    map (``(n_sub, rows, n)``), its rank, the pseudo-inverse solve
    operator (``(n_sub, n, rows)``, minimum-norm least squares, singular
    values below ``rank_tolerance`` zeroed) and — for full-rank subsets
    — the geometry part of the end-state covariance
    ``Φ (MᵀM)⁻¹ Φᵀ``.  All of it is measurement-independent.
    """

    __slots__ = (
        "sensors",
        "attacked",
        "row_indices",
        "stacked",
        "ranks",
        "observable",
        "solve_maps",
        "covariances",
        "unobservable_subsets",
    )

    def __init__(
        self,
        full_stack: np.ndarray,
        end_map: np.ndarray,
        p: int,
        s: int,
        T: int,
        n: int,
        rank_tolerance: float,
    ):
        self.sensors = _subset_tuples(p, s)
        self.attacked = _attacked_tuples(p, s)
        self.row_indices = _subset_row_indices(p, s, T)
        self.stacked = full_stack[self.row_indices]  # (n_sub, rows, n)
        u, sv, vt = np.linalg.svd(self.stacked, full_matrices=False)
        ranks = (sv > rank_tolerance).sum(axis=1)
        self.ranks = tuple(int(r) for r in ranks)
        self.observable = tuple(r == n for r in self.ranks)
        inv_sv = np.where(sv > rank_tolerance, 1.0, 0.0) / np.where(
            sv > rank_tolerance, sv, 1.0
        )
        # V diag(1/σ) Uᵀ — the minimum-norm least-squares operator.
        self.solve_maps = (
            np.transpose(vt, (0, 2, 1)) * inv_sv[:, None, :]
        ) @ np.transpose(u, (0, 2, 1))
        covariances: List[Optional[np.ndarray]] = [None] * len(self.sensors)
        full_rank = [j for j, ok in enumerate(self.observable) if ok]
        if full_rank:
            grams = (
                np.transpose(self.stacked[full_rank], (0, 2, 1))
                @ self.stacked[full_rank]
            )
            gram_inv = np.linalg.inv(grams)
            covs = end_map @ gram_inv @ end_map.T
            for idx, j in enumerate(full_rank):
                covariances[j] = covs[idx]
        self.covariances = tuple(covariances)
        self.unobservable_subsets = tuple(
            self.sensors[j]
            for j, ok in enumerate(self.observable)
            if not ok
        )


class _WindowGeometry:
    """Measurement-independent state of one window dt-geometry."""

    __slots__ = (
        "key",
        "powers",
        "intervals",
        "full_stack",
        "input_map",
        "kernels",
    )

    def __init__(
        self,
        key: Tuple,
        powers: np.ndarray,
        intervals: Tuple[Tuple[np.ndarray, Optional[np.ndarray]], ...],
        full_stack: np.ndarray,
        input_map: Optional[np.ndarray],
    ):
        self.key = key
        self.powers = powers  # (T, n, n) cumulative Φ(t_k, t_0)
        self.intervals = intervals  # per-interval (A_k, B_k)
        self.full_stack = full_stack  # (T * p, n) rows k-major, sensor-minor
        # (T, n, (T-1)·m) linear map from the flattened input sequence to
        # the input contribution f[k]; None for input-free models.
        self.input_map = input_map
        self.kernels: Dict[int, _SubsetKernel] = {}

    @property
    def io_length(self) -> int:
        return self.powers.shape[0]


def _geometry_key(T: int, dts: Optional[np.ndarray]) -> Tuple:
    if dts is None:
        return ("uniform", T)
    return (T, np.round(dts, _DT_KEY_DECIMALS).tobytes())


def _interval_matrices(
    A: np.ndarray,
    B: Optional[np.ndarray],
    dts: Optional[np.ndarray],
    transition,
    T: int,
) -> Tuple[Tuple[np.ndarray, Optional[np.ndarray]], ...]:
    """Per-interval ``(A_k, B_k)`` — exact discretizations when available."""
    if transition is not None and dts is not None:
        return tuple(transition(float(dts[k])) for k in range(T - 1))
    return ((A, B),) * (T - 1)


def _build_geometry(
    A: np.ndarray,
    B: Optional[np.ndarray],
    C: np.ndarray,
    T: int,
    dts: Optional[np.ndarray],
    transition,
    previous: Optional[_WindowGeometry] = None,
) -> _WindowGeometry:
    """Build (or extend) the Φ products and the stacked full system.

    When ``previous`` covers this geometry's first ``T - 1`` samples the
    new entry appends one transition product and ``p`` stacked rows to
    the cached arrays instead of rebuilding — bit-identical to a fresh
    build because the fresh build computes the exact same prefix.
    """
    n = A.shape[0]
    key = _geometry_key(T, dts)
    intervals = _interval_matrices(A, B, dts, transition, T)
    m = B.shape[1] if B is not None else 0
    if previous is not None and previous.io_length == T - 1:
        A_last, B_last = intervals[-1]
        new_power = A_last @ previous.powers[-1]
        powers = np.concatenate([previous.powers, new_power[None]])
        new_rows = C @ new_power
        full_stack = np.concatenate([previous.full_stack, new_rows])
        input_map = None
        if m:
            # Widen by one zero input block and append the recursion's
            # next row — the fresh build computes the exact same blocks
            # (matrix products against the old, unpadded slices).
            input_map = np.zeros((T, n, (T - 1) * m))
            input_map[: T - 1, :, : (T - 2) * m] = previous.input_map
            input_map[T - 1, :, : (T - 2) * m] = (
                A_last @ previous.input_map[T - 2]
            )
            input_map[T - 1, :, (T - 2) * m :] = B_last
        return _WindowGeometry(key, powers, intervals, full_stack, input_map)
    powers = np.empty((T, n, n))
    powers[0] = np.eye(n)
    for k in range(T - 1):
        powers[k + 1] = intervals[k][0] @ powers[k]
    full_stack = np.matmul(C, powers).reshape(T * C.shape[0], n)
    input_map = None
    if m:
        # f[k+1] = A_k f[k] + B_k u[k] unrolled into one linear map from
        # the flattened input sequence: f = input_map @ us.ravel().
        input_map = np.zeros((T, n, (T - 1) * m))
        for k in range(T - 1):
            A_k, B_k = intervals[k]
            input_map[k + 1, :, : k * m] = A_k @ input_map[k, :, : k * m]
            input_map[k + 1, :, k * m : (k + 1) * m] = B_k
    return _WindowGeometry(key, powers, intervals, full_stack, input_map)


def _input_contribution(
    geometry: _WindowGeometry,
    us: Optional[np.ndarray],
    n: int,
) -> np.ndarray:
    """``f[k]`` with ``f[0] = 0`` and ``f[k+1] = A_k f[k] + B_k u[k]``."""
    T = geometry.io_length
    if us is None or len(us) == 0 or geometry.input_map is None:
        return np.zeros((T, n))
    return geometry.input_map @ np.asarray(us, float).ravel()


def _apply_kernel(
    geometry: _WindowGeometry,
    kernel: _SubsetKernel,
    targets_full: np.ndarray,
    f_end: np.ndarray,
    end_map: np.ndarray,
    residual_threshold: float,
    guaranteed: bool,
) -> ReconstructionResult:
    """The per-measurement batched data pass over one subset kernel."""
    tgt = targets_full[kernel.row_indices]  # (n_sub, rows)
    x0 = (kernel.solve_maps @ tgt[:, :, None])[:, :, 0]  # (n_sub, n)
    pred = (kernel.stacked @ x0[:, :, None])[:, :, 0]
    err = pred - tgt
    sq = err * err
    residuals = np.sqrt(sq.sum(axis=1) / sq.shape[1])
    x_end = x0 @ end_map.T + f_end
    n_sub = len(kernel.sensors)
    # Row views, not copies: x0/x_end are freshly allocated per call and
    # candidates are read-only by contract, so slicing is safe.
    candidates = [
        ReconstructionCandidate(
            sensors=kernel.sensors[j],
            attacked=kernel.attacked[j],
            x0=x0[j],
            x_end=x_end[j],
            residual=float(residuals[j]),
            observable=kernel.observable[j],
            x_end_covariance=kernel.covariances[j],
        )
        for j in range(n_sub)
    ]
    candidates.sort(key=lambda c: c.residual)
    consistent = tuple(
        c
        for c in candidates
        if c.observable and c.residual <= residual_threshold
    )
    return ReconstructionResult(
        candidates=tuple(candidates),
        consistent=consistent,
        guaranteed=guaranteed,
        unobservable_subsets=kernel.unobservable_subsets,
        subsets_searched=n_sub,
        subsets_pruned=n_sub - len(consistent),
    )


# ----------------------------------------------------------------------
# solvers
# ----------------------------------------------------------------------


class IncrementalWindowSolver:
    """Sliding-window subset search with geometry caching.

    The pipeline estimator solves an almost-identical window every
    trusted sample: same model, same sensors, a dt-tuple that only
    changes when a challenge instant punches a hole in the stream.
    This solver keys every measurement-independent structure (Φ
    products, stacked subset maps, ranks, solve operators, covariances,
    the 2s-sparse observability verdict) on that dt-tuple and reuses
    it, so the steady-state cost per step is one cache lookup plus the
    batched data pass.  Candidates are **bit-identical** to a
    from-scratch :meth:`SecureStateReconstruct.solve` on the same
    window — both run the same kernel code on the same arrays.

    Parameters
    ----------
    A, B, C:
        Nominal discrete model (``B`` may be None).
    residual_threshold, rank_tolerance:
        As on :class:`SecureStateReconstruct`.
    transition:
        Optional ``dt → (A_dt, B_dt)`` builder for non-uniform windows.
    max_geometries:
        LRU bound on distinct cached dt-geometries (jittered sampling
        produces unbounded key churn otherwise).
    """

    def __init__(
        self,
        A: np.ndarray,
        B: Optional[np.ndarray],
        C: np.ndarray,
        *,
        residual_threshold: float = 1e-6,
        rank_tolerance: float = 1e-10,
        transition=None,
        max_geometries: int = 32,
    ):
        if residual_threshold <= 0.0:
            raise ConfigurationError(
                f"residual_threshold must be positive, got {residual_threshold}"
            )
        if max_geometries < 1:
            raise ConfigurationError(
                f"max_geometries must be >= 1, got {max_geometries}"
            )
        self.A = np.atleast_2d(np.asarray(A, float))
        self.B = (
            np.asarray(B, float).reshape(self.A.shape[0], -1)
            if B is not None
            else None
        )
        self.C = np.atleast_2d(np.asarray(C, float))
        self.residual_threshold = float(residual_threshold)
        self.rank_tolerance = float(rank_tolerance)
        self.transition = transition
        self.max_geometries = int(max_geometries)
        self._geometries: Dict[Tuple, _WindowGeometry] = {}
        self._guaranteed: Dict[int, bool] = {}
        #: Cache telemetry (monotonic counters).
        self.geometry_hits = 0
        self.geometry_misses = 0
        self.geometry_extensions = 0
        self.subsets_solved = 0

    # -- geometry management -------------------------------------------

    def _geometry(self, T: int, dts: Optional[np.ndarray]) -> _WindowGeometry:
        key = _geometry_key(T, dts)
        entry = self._geometries.get(key)
        if entry is not None:
            self.geometry_hits += 1
            self._geometries[key] = self._geometries.pop(key)
            return entry
        # Append path: the same window minus its newest sample is known
        # — extend the cached Φ products / stacked rows by one step.
        previous = None
        if T > 2:
            prev_key = _geometry_key(T - 1, None if dts is None else dts[:-1])
            previous = self._geometries.get(prev_key)
        if previous is not None:
            self.geometry_extensions += 1
        else:
            self.geometry_misses += 1
        entry = _build_geometry(
            self.A, self.B, self.C, T, dts, self.transition, previous=previous
        )
        self._geometries[key] = entry
        if len(self._geometries) > self.max_geometries:
            self._geometries.pop(next(iter(self._geometries)))
        return entry

    def _kernel(self, geometry: _WindowGeometry, s: int) -> _SubsetKernel:
        kernel = geometry.kernels.get(s)
        if kernel is None:
            T = geometry.io_length
            kernel = _SubsetKernel(
                geometry.full_stack,
                geometry.powers[T - 1],
                self.C.shape[0],
                s,
                T,
                self.A.shape[0],
                self.rank_tolerance,
            )
            geometry.kernels[s] = kernel
        return kernel

    def _guarantee(self, s: int) -> bool:
        verdict = self._guaranteed.get(s)
        if verdict is None:
            verdict = is_sparse_observable(
                self.A, self.C, 2 * s, tolerance=self.rank_tolerance
            )
            self._guaranteed[s] = verdict
        return verdict

    # -- solving --------------------------------------------------------

    def solve(
        self,
        ys: np.ndarray,
        us: Optional[np.ndarray] = None,
        dts: Optional[np.ndarray] = None,
        s: int = 1,
    ) -> ReconstructionResult:
        """Solve one window under sparsity ``s`` (cached geometry)."""
        return self.solve_many(ys, us, dts, (s,))[s]

    def solve_many(
        self,
        ys: np.ndarray,
        us: Optional[np.ndarray],
        dts: Optional[np.ndarray],
        sparsities: Sequence[int],
    ) -> Dict[int, ReconstructionResult]:
        """Solve one window under several sparsity assumptions at once.

        The window preparation (geometry lookup, input contribution,
        stacked targets) is shared — the estimator's paired ``s = 0``
        consistency check and ``s > 0`` defense solve cost one build.
        """
        ys = np.asarray(ys, float)
        T = ys.shape[0]
        geometry = self._geometry(T, dts)
        f = _input_contribution(geometry, us, self.A.shape[0])
        targets_full = (ys - f @ self.C.T).ravel()
        end_map = geometry.powers[T - 1]
        f_end = f[T - 1]
        results: Dict[int, ReconstructionResult] = {}
        for s in sparsities:
            kernel = self._kernel(geometry, s)
            results[s] = _apply_kernel(
                geometry,
                kernel,
                targets_full,
                f_end,
                end_map,
                self.residual_threshold,
                self._guarantee(s),
            )
            self.subsets_solved += results[s].subsets_searched
        return results

    @property
    def cached_geometries(self) -> int:
        """Number of dt-geometries currently cached."""
        return len(self._geometries)


class SecureStateReconstruct:
    """From-scratch subset search over an :class:`SSProblem`.

    Builds the window geometry at construction and solves it with the
    same batched kernels as :class:`IncrementalWindowSolver` — this is
    the *from-scratch* path (one geometry build per instance), the
    baseline the incremental solver is benchmarked against
    (``benchmarks/bench_defense_runtime.py``); results are bit-identical
    between the two.

    Parameters
    ----------
    problem:
        The model, window and sparsity assumption.
    residual_threshold:
        RMS residual above which a subset is rejected as inconsistent
        (units of the measurements).
    rank_tolerance:
        Singular-value tolerance of the observability rank checks.
    transition:
        Optional ``dt → (A_dt, B_dt)`` builder for non-uniform windows
        (``problem.dts``); each interval then uses its exact
        discretization instead of the nominal matrices.  Ignored when
        the problem carries no ``dts``.
    """

    def __init__(
        self,
        problem: SSProblem,
        residual_threshold: float = 1e-6,
        rank_tolerance: float = 1e-10,
        transition=None,
    ):
        if residual_threshold <= 0.0:
            raise ConfigurationError(
                f"residual_threshold must be positive, got {residual_threshold}"
            )
        self.problem = problem
        self.residual_threshold = float(residual_threshold)
        self.rank_tolerance = float(rank_tolerance)
        self._geometry = _build_geometry(
            problem.A,
            problem.B,
            problem.C,
            problem.io_length,
            problem.dts,
            transition,
        )
        # Back-compat views of the construction-time window state.
        self._powers = self._geometry.powers
        self._inputs = _input_contribution(
            self._geometry, problem.us, problem.n
        )

    # ------------------------------------------------------------------

    def subsets(self) -> List[Tuple[int, ...]]:
        """Every sensor subset of size ``p - s`` (the honest hypotheses)."""
        return list(_subset_tuples(self.problem.p, self.problem.s))

    def solve(self) -> ReconstructionResult:
        """Search every subset (batched) and classify the candidates."""
        problem = self.problem
        T = problem.io_length
        kernel = _SubsetKernel(
            self._geometry.full_stack,
            self._geometry.powers[T - 1],
            problem.p,
            problem.s,
            T,
            problem.n,
            self.rank_tolerance,
        )
        targets_full = (problem.ys - self._inputs @ problem.C.T).ravel()
        guaranteed = is_sparse_observable(
            problem.A, problem.C, 2 * problem.s, tolerance=self.rank_tolerance
        )
        return _apply_kernel(
            self._geometry,
            kernel,
            targets_full,
            self._inputs[T - 1],
            self._geometry.powers[T - 1],
            self.residual_threshold,
            guaranteed,
        )

    def solve_naive(self) -> ReconstructionResult:
        """The pre-batching reference: one python-level solve per subset.

        Kept for regression tests and the runtime bench's historical
        baseline row.  Numerically equivalent to :meth:`solve` (same
        stacked systems, same rank semantics); the least-squares step
        goes through per-subset ``np.linalg.lstsq`` instead of the
        cached pseudo-inverse operator, so the last few ulps of ``x0``
        may differ on noisy windows.
        """
        problem = self.problem
        candidates = sorted(
            (self._solve_subset(sensors) for sensors in self.subsets()),
            key=lambda c: c.residual,
        )
        consistent = tuple(
            c
            for c in candidates
            if c.observable and c.residual <= self.residual_threshold
        )
        guaranteed = is_sparse_observable(
            problem.A, problem.C, 2 * problem.s, tolerance=self.rank_tolerance
        )
        unobservable = tuple(
            c.sensors for c in candidates if not c.observable
        )
        return ReconstructionResult(
            candidates=tuple(candidates),
            consistent=consistent,
            guaranteed=guaranteed,
            unobservable_subsets=unobservable,
            subsets_searched=len(candidates),
            subsets_pruned=len(candidates) - len(consistent),
        )

    def _solve_subset(
        self, sensors: Sequence[int]
    ) -> ReconstructionCandidate:
        """Least-squares observer for one assumed-honest subset."""
        problem = self.problem
        C_sub = problem.C[list(sensors), :]
        T = problem.io_length
        # Stacked map: rows (k, i) — sensor i at step k.
        stacked = np.vstack([C_sub @ self._powers[k] for k in range(T)])
        targets = np.concatenate(
            [
                problem.ys[k, list(sensors)] - C_sub @ self._inputs[k]
                for k in range(T)
            ]
        )
        rank = int(
            np.linalg.matrix_rank(stacked, tol=self.rank_tolerance)
        )
        x0, *_ = np.linalg.lstsq(stacked, targets, rcond=None)
        residual = float(
            np.sqrt(np.mean((stacked @ x0 - targets) ** 2))
        )
        end_map = self._powers[T - 1]
        x_end = end_map @ x0 + self._inputs[T - 1]
        covariance = None
        if rank == problem.n:
            gram_inverse = np.linalg.inv(stacked.T @ stacked)
            covariance = end_map @ gram_inverse @ end_map.T
        return ReconstructionCandidate(
            sensors=tuple(int(i) for i in sensors),
            attacked=tuple(
                i for i in range(problem.p) if i not in set(sensors)
            ),
            x0=x0,
            x_end=x_end,
            residual=residual,
            observable=rank == problem.n,
            x_end_covariance=covariance,
        )
